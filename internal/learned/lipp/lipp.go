// Package lipp implements a LIPP-style learned index (Wu et al.,
// VLDB'21: "Updatable Learned Index with Precise Positions") — the
// design the paper's §V-B1 identifies as the realisation of its own
// advice (combine an asymmetric structure with a gap-making
// approximation algorithm) but could not evaluate because LIPP was not
// open source at the time. This package makes that evaluation possible.
//
// The core idea: every key sits exactly at its model-predicted slot —
// *precise positions*, no final search at all. Each node is a linear
// model over a slot array whose entries are either empty, a data entry,
// or a child node; keys whose predictions collide are pushed into a
// child node with its own (finer) model. Lookups follow predictions
// only; inserts place into an empty slot or grow a child at the
// conflict; subtrees whose conflict ratio grows too high are rebuilt
// (the retraining strategy).
package lipp

import (
	"sync"
	"sync/atomic"
	"time"

	"learnedpieces/internal/index"
	"learnedpieces/internal/pla"
)

// Config controls node sizing and rebuild triggers.
type Config struct {
	// GapFactor scales node capacity relative to the key count; <= 1
	// picks 1.5 (the gaps that keep conflicts rare).
	GapFactor float64
	// MinCapacity is the smallest node slot count; <= 0 picks 8.
	MinCapacity int
	// ConflictRatio triggers a subtree rebuild when the conflicts created
	// since the last build exceed ratio*keys; <= 0 picks 0.25.
	ConflictRatio float64
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config { return Config{} }

func (c *Config) normalize() {
	if c.GapFactor <= 1 {
		c.GapFactor = 1.5
	}
	if c.MinCapacity <= 0 {
		c.MinCapacity = 8
	}
	if c.ConflictRatio <= 0 {
		c.ConflictRatio = 0.25
	}
}

type entryKind uint8

const (
	entryEmpty entryKind = iota
	entryData
	entryChild
)

type entry struct {
	kind  entryKind
	key   uint64
	val   uint64
	child *node
}

type node struct {
	firstKey  uint64
	slope     float64
	intercept float64
	entries   []entry
	// keysAtBuild and conflicts drive the rebuild trigger.
	keysAtBuild int
	conflicts   int
}

func (nd *node) slot(key uint64) int {
	var d float64
	if key >= nd.firstKey {
		d = float64(key - nd.firstKey)
	} else {
		d = -float64(nd.firstKey - key)
	}
	s := int(nd.slope*d + nd.intercept)
	if s < 0 {
		return 0
	}
	if s >= len(nd.entries) {
		return len(nd.entries) - 1
	}
	return s
}

// Index is the LIPP-style index.
type Index struct {
	cfg    Config
	root   *node
	length int

	retrains  atomic.Int64
	retrainNs atomic.Int64
}

// New returns an empty index.
func New(cfg Config) *Index {
	cfg.normalize()
	ix := &Index{cfg: cfg}
	ix.root = ix.build(nil, nil)
	return ix
}

// Name implements index.Index.
func (ix *Index) Name() string { return "lipp" }

// Len returns the number of stored entries.
func (ix *Index) Len() int { return ix.length }

// ConcurrentReads reports that concurrent Gets are safe between writes.
func (ix *Index) ConcurrentReads() bool { return true }

// RetrainStats implements index.RetrainReporter.
func (ix *Index) RetrainStats() (int64, int64) { return ix.retrains.Load(), ix.retrainNs.Load() }

// BulkLoad builds the tree over sorted distinct keys.
func (ix *Index) BulkLoad(keys, values []uint64) error {
	if values == nil {
		values = make([]uint64, len(keys))
	}
	ix.root = ix.build(keys, values)
	ix.length = len(keys)
	return nil
}

// build constructs a node over sorted keys; conflicting groups become
// child nodes, recursively (LIPP's FMCD construction, simplified to a
// least-squares model over a gapped capacity).
func (ix *Index) build(keys, vals []uint64) *node {
	n := len(keys)
	capacity := int(float64(n)*ix.cfg.GapFactor) + 1
	if capacity < ix.cfg.MinCapacity {
		capacity = ix.cfg.MinCapacity
	}
	nd := &node{entries: make([]entry, capacity), keysAtBuild: n}
	if n == 0 {
		return nd
	}
	fit := pla.FitLinear(keys, 0, n)
	scale := float64(capacity) / float64(n)
	nd.firstKey = keys[0]
	nd.slope = fit.Slope * scale
	nd.intercept = (fit.Intercept - float64(fit.Start)) * scale
	if nd.slope <= 0 && n > 1 {
		// Degenerate fit: spread endpoints linearly so grouping progresses.
		nd.slope = float64(capacity-1) / float64(keys[n-1]-keys[0])
		nd.intercept = 0
	}
	// A model that maps every key to one slot makes no progress; replace
	// it with the endpoint-spread model, which is guaranteed to separate
	// the first and last keys for capacity >= 3.
	if n > 1 && nd.slot(keys[0]) == nd.slot(keys[n-1]) {
		nd.slope = float64(capacity-1) / float64(keys[n-1]-keys[0])
		nd.intercept = 0
	}
	return ix.buildGrouped(nd, keys, vals)
}

// buildGrouped redoes the slot grouping after the model was replaced.
func (ix *Index) buildGrouped(nd *node, keys, vals []uint64) *node {
	n := len(keys)
	i := 0
	for i < n {
		s := nd.slot(keys[i])
		j := i + 1
		for j < n && nd.slot(keys[j]) == s {
			j++
		}
		if j-i == 1 {
			nd.entries[s] = entry{kind: entryData, key: keys[i], val: vals[i]}
		} else {
			nd.entries[s] = entry{kind: entryChild, child: ix.build(keys[i:j], vals[i:j])}
		}
		i = j
	}
	return nd
}

// Get returns the value stored under key: pure prediction-following, no
// local search (the "precise positions" property).
func (ix *Index) Get(key uint64) (uint64, bool) {
	nd := ix.root
	for {
		e := &nd.entries[nd.slot(key)]
		switch e.kind {
		case entryEmpty:
			return 0, false
		case entryData:
			if e.key == key {
				return e.val, true
			}
			return 0, false
		case entryChild:
			nd = e.child
		}
	}
}

// GetBatch implements index.BatchGetter. LIPP has no last-mile search
// to interleave — lookups are pure prediction-following — but the
// descents themselves are chains of dependent cache misses, so the
// lockstep rounds advance every unresolved lane one node per round and
// let the node loads of a round overlap.
func (ix *Index) GetBatch(keys []uint64, vals []uint64, found []bool) {
	const lanes = 16
	for off := 0; off < len(keys); off += lanes {
		end := off + lanes
		if end > len(keys) {
			end = len(keys)
		}
		m := end - off
		var nd [lanes]*node
		for l := 0; l < m; l++ {
			nd[l] = ix.root
			vals[off+l], found[off+l] = 0, false
		}
		live := m
		for live > 0 {
			live = 0
			for l := 0; l < m; l++ {
				cur := nd[l]
				if cur == nil {
					continue
				}
				key := keys[off+l]
				e := &cur.entries[cur.slot(key)]
				switch e.kind {
				case entryEmpty:
					nd[l] = nil
				case entryData:
					if e.key == key {
						vals[off+l], found[off+l] = e.val, true
					}
					nd[l] = nil
				case entryChild:
					nd[l] = e.child
					live++
				}
			}
		}
	}
}

// Insert stores value under key, replacing any existing value.
func (ix *Index) Insert(key, value uint64) error {
	var path []*node
	nd := ix.root
	for {
		path = append(path, nd)
		s := nd.slot(key)
		e := &nd.entries[s]
		switch e.kind {
		case entryEmpty:
			*e = entry{kind: entryData, key: key, val: value}
			ix.length++
			ix.maybeRebuild(path)
			return nil
		case entryData:
			if e.key == key {
				e.val = value
				return nil
			}
			// Conflict: both keys move into a fresh child node.
			ka, va := e.key, e.val
			kb, vb := key, value
			if ka > kb {
				ka, kb = kb, ka
				va, vb = vb, va
			}
			child := ix.build([]uint64{ka, kb}, []uint64{va, vb})
			*e = entry{kind: entryChild, child: child}
			nd.conflicts++
			ix.length++
			ix.maybeRebuild(path)
			return nil
		case entryChild:
			nd = e.child
		}
	}
}

// maybeRebuild rebuilds the topmost subtree on the path whose conflict
// count exceeds the configured ratio of its keys — LIPP's adjustment
// strategy keeping paths short.
func (ix *Index) maybeRebuild(path []*node) {
	for _, nd := range path {
		threshold := int(ix.cfg.ConflictRatio*float64(nd.keysAtBuild)) + 8
		if nd.conflicts < threshold {
			continue
		}
		start := time.Now()
		keys := make([]uint64, 0, nd.keysAtBuild+nd.conflicts)
		vals := make([]uint64, 0, nd.keysAtBuild+nd.conflicts)
		collect(nd, func(k, v uint64) bool {
			keys = append(keys, k)
			vals = append(vals, v)
			return true
		})
		rebuilt := ix.build(keys, vals)
		*nd = *rebuilt
		ix.retrains.Add(1)
		ix.retrainNs.Add(time.Since(start).Nanoseconds())
		return
	}
}

// collect walks the subtree in key order.
func collect(nd *node, fn func(k, v uint64) bool) bool {
	for i := range nd.entries {
		e := &nd.entries[i]
		switch e.kind {
		case entryData:
			if !fn(e.key, e.val) {
				return false
			}
		case entryChild:
			if !collect(e.child, fn) {
				return false
			}
		}
	}
	return true
}

// Delete removes key and reports whether it was present. Child nodes are
// not collapsed; the slot simply empties.
func (ix *Index) Delete(key uint64) bool {
	nd := ix.root
	for {
		e := &nd.entries[nd.slot(key)]
		switch e.kind {
		case entryEmpty:
			return false
		case entryData:
			if e.key != key {
				return false
			}
			*e = entry{}
			ix.length--
			return true
		case entryChild:
			nd = e.child
		}
	}
}

// Scan visits entries with key >= start in ascending key order. Slot
// order equals key order because every node's model is monotone, so the
// walk starts at each node's predicted slot for start and prunes
// everything before it — short scans cost O(result + depth).
func (ix *Index) Scan(start uint64, n int, fn func(key, value uint64) bool) {
	count := 0
	ix.scanFrom(ix.root, start, n, &count, fn)
}

func (ix *Index) scanFrom(nd *node, start uint64, limit int, count *int, fn func(key, value uint64) bool) bool {
	// Keys at slots below slot(start) are all < start (monotone model).
	from := nd.slot(start)
	for i := from; i < len(nd.entries); i++ {
		e := &nd.entries[i]
		switch e.kind {
		case entryData:
			if e.key < start {
				continue
			}
			if limit > 0 && *count >= limit {
				return false
			}
			if !fn(e.key, e.val) {
				return false
			}
			*count++
		case entryChild:
			var cont bool
			if i == from {
				cont = ix.scanFrom(e.child, start, limit, count, fn)
			} else {
				// Subtrees right of the start slot hold only keys >= start.
				cont = collectLimited(e.child, limit, count, fn)
			}
			if !cont {
				return false
			}
		}
	}
	return true
}

// collectLimited walks a whole subtree in order, honouring the limit.
func collectLimited(nd *node, limit int, count *int, fn func(k, v uint64) bool) bool {
	for i := range nd.entries {
		e := &nd.entries[i]
		switch e.kind {
		case entryData:
			if limit > 0 && *count >= limit {
				return false
			}
			if !fn(e.key, e.val) {
				return false
			}
			*count++
		case entryChild:
			if !collectLimited(e.child, limit, count, fn) {
				return false
			}
		}
	}
	return true
}

// frame is one level of a cursor's explicit walk stack.
type frame struct {
	nd *node
	i  int
}

// cursor streams the tree through an explicit stack of (node, slot)
// frames. Slot order equals key order (monotone models), so the
// depth-first walk is the range; children are entered at their
// predicted slot for the range start, which — by the same monotonicity
// argument scanFrom relies on — prunes only keys below it. The stack
// grows by append when the tree is deeper than the pooled capacity, so
// this cursor is deliberately not hotpath-marked.
type cursor struct {
	stack []frame
	start uint64
}

var cursorPool = sync.Pool{New: func() any {
	return &cursor{stack: make([]frame, 0, 32)}
}}

// Range implements index.Ranger: the root is entered at its predicted
// slot and the pooled cursor walks from there.
func (ix *Index) Range(start uint64) index.Cursor {
	c := cursorPool.Get().(*cursor)
	c.stack = append(c.stack[:0], frame{ix.root, ix.root.slot(start)})
	c.start = start
	return c
}

// Next fills the destination slices with the next in-order entries.
func (c *cursor) Next(keys, vals []uint64) int {
	n := 0
	for n < len(keys) && len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		if top.i >= len(top.nd.entries) {
			c.stack = c.stack[:len(c.stack)-1]
			continue
		}
		e := &top.nd.entries[top.i]
		top.i++
		switch e.kind {
		case entryData:
			if e.key >= c.start {
				keys[n] = e.key
				vals[n] = e.val
				n++
				// Everything after the first emitted key passes the
				// filter; zero makes the comparison vacuous.
				c.start = 0
			}
		case entryChild:
			c.stack = append(c.stack, frame{e.child, e.child.slot(c.start)})
		}
	}
	return n
}

func (c *cursor) Close() {
	c.stack = c.stack[:0]
	cursorPool.Put(c)
}

// AvgDepth returns the key-weighted average node-path length.
func (ix *Index) AvgDepth() float64 {
	var sum, keys float64
	var walk func(nd *node, d float64)
	walk = func(nd *node, d float64) {
		for i := range nd.entries {
			switch nd.entries[i].kind {
			case entryData:
				sum += d
				keys++
			case entryChild:
				walk(nd.entries[i].child, d+1)
			}
		}
	}
	walk(ix.root, 1)
	if keys == 0 {
		return 0
	}
	return sum / keys
}

// NodeCount returns the number of model nodes.
func (ix *Index) NodeCount() int {
	count := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		count++
		for i := range nd.entries {
			if nd.entries[i].kind == entryChild {
				walk(nd.entries[i].child)
			}
		}
	}
	walk(ix.root)
	return count
}

// Sizes reports the footprint: entry slots hold the keys and values, so
// unlike the other learned indexes LIPP has no separate sorted array.
func (ix *Index) Sizes() index.Sizes {
	var slots int64
	var nodes int64
	var walk func(nd *node)
	walk = func(nd *node) {
		nodes++
		slots += int64(len(nd.entries))
		for i := range nd.entries {
			if nd.entries[i].kind == entryChild {
				walk(nd.entries[i].child)
			}
		}
	}
	walk(ix.root)
	return index.Sizes{
		Structure: nodes*48 + slots, // models + per-slot kind tag
		Keys:      slots * 8,
		Values:    slots * 8,
	}
}
