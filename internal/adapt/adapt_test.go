package adapt

import (
	"sync"
	"testing"
	"time"

	"learnedpieces/internal/search"
	"learnedpieces/internal/telemetry"
)

// fakeFeed drives a Controller from scripted op counts: each call to
// push adds a window's worth of gets/puts to the running totals the
// Snapshot closure serves. Mutex-guarded so Start's controller
// goroutine can snapshot while the test pushes.
type fakeFeed struct {
	mu  sync.Mutex
	cur telemetry.Snapshot
}

func (f *fakeFeed) push(gets, puts int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cur.Store.Get.Ops += gets
	f.cur.Store.Put.Ops += puts
}

func (f *fakeFeed) pushScans(scans int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cur.Store.Scan.Ops += scans
}

func (f *fakeFeed) snapshot() telemetry.Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// flipRecorder captures every knob call.
type flipRecorder struct {
	policies   []search.Policy
	asyncs     []bool
	thresholds []int
	floors     []int
	scanBatch  []int
	coalesces  []bool
	caches     []bool
	promotes   int
}

func (r *flipRecorder) knobs() Knobs {
	return Knobs{
		SearchPolicy:     func(p search.Policy) { r.policies = append(r.policies, p) },
		RetrainAsync:     func(on bool) { r.asyncs = append(r.asyncs, on) },
		RetrainThreshold: func(n int) { r.thresholds = append(r.thresholds, n) },
		BatchFloor:       func(n int) { r.floors = append(r.floors, n) },
		ScanBatch:        func(n int) { r.scanBatch = append(r.scanBatch, n) },
		Coalesce:         func(on bool) { r.coalesces = append(r.coalesces, on) },
		CacheEnable:      func(on bool) { r.caches = append(r.caches, on) },
		Promote:          func(keys []uint64) { r.promotes++ },
	}
}

func newTestController(feed *fakeFeed, rec *flipRecorder, hot *HotKeys) *Controller {
	return NewController(Config{
		Snapshot: feed.snapshot,
		Hot:      hot,
		Knobs:    rec.knobs(),
	})
}

func TestControllerConfirmHysteresis(t *testing.T) {
	feed := &fakeFeed{}
	rec := &flipRecorder{}
	c := newTestController(feed, rec, nil)

	c.Tick() // prime: no baseline yet, must not classify
	if got := c.Phase(); got != PhaseIdle {
		t.Fatalf("phase after priming tick = %v, want idle", got)
	}

	// One read-heavy window: candidate only, no knobs flipped yet
	// (Confirm defaults to 2).
	feed.push(10_000, 0)
	if got := c.Tick(); got != PhaseIdle {
		t.Fatalf("phase after one read window = %v, want idle (unconfirmed)", got)
	}
	if len(rec.policies) != 0 {
		t.Fatalf("knobs flipped before confirmation: %v", rec.policies)
	}

	// Second consecutive read window commits the phase.
	feed.push(10_000, 0)
	if got := c.Tick(); got != PhaseRead {
		t.Fatalf("phase after two read windows = %v, want read", got)
	}
	if c.Probe().PhaseChanges != 1 {
		t.Fatalf("phase changes = %d, want 1", c.Probe().PhaseChanges)
	}

	// An isolated insert window must not flap the knobs...
	flipsBefore := c.Probe().Flips
	feed.push(0, 10_000)
	if got := c.Tick(); got != PhaseRead {
		t.Fatalf("phase after one insert window = %v, want read (held)", got)
	}
	// ...and the interleaved read window resets the insert streak.
	feed.push(10_000, 0)
	c.Tick()
	feed.push(0, 10_000)
	if got := c.Tick(); got != PhaseRead {
		t.Fatalf("alternating windows flipped phase to %v", got)
	}
	if got := c.Probe().Flips; got != flipsBefore {
		t.Fatalf("alternating windows flipped knobs: %d -> %d", flipsBefore, got)
	}

	// Two consecutive insert windows commit the insert posture.
	feed.push(0, 10_000)
	if got := c.Tick(); got != PhaseInsert {
		t.Fatalf("phase after two insert windows = %v, want insert", got)
	}
	last := func(b []bool) bool { return b[len(b)-1] }
	if !last(rec.asyncs) {
		t.Error("insert posture did not route retrains async")
	}
	if rec.thresholds[len(rec.thresholds)-1] != 8192 {
		t.Errorf("insert threshold = %d, want 8192", rec.thresholds[len(rec.thresholds)-1])
	}
	if last(rec.coalesces) || last(rec.caches) {
		t.Error("insert posture left coalesce/cache on")
	}
}

func TestControllerScanPhaseDeepensScanBatch(t *testing.T) {
	feed := &fakeFeed{}
	rec := &flipRecorder{}
	c := newTestController(feed, rec, nil)
	c.Tick() // prime

	// Two scan-dominated windows commit PhaseScan, which must deepen
	// the store's cursor batch.
	feed.pushScans(10_000)
	c.Tick()
	feed.pushScans(10_000)
	if got := c.Tick(); got != PhaseScan {
		t.Fatalf("phase after two scan windows = %v, want scan", got)
	}
	if n := len(rec.scanBatch); n == 0 || rec.scanBatch[n-1] != 1024 {
		t.Fatalf("scan posture batch knob = %v, want trailing 1024", rec.scanBatch)
	}

	// Returning to point reads must restore the default (<= 0).
	feed.push(10_000, 0)
	c.Tick()
	feed.push(10_000, 0)
	if got := c.Tick(); got != PhaseRead {
		t.Fatalf("phase after two read windows = %v, want read", got)
	}
	if n := len(rec.scanBatch); rec.scanBatch[n-1] > 0 {
		t.Fatalf("read posture left scan batch at %d, want default (<= 0)", rec.scanBatch[n-1])
	}
}

func TestControllerIdleHoldsKnobs(t *testing.T) {
	feed := &fakeFeed{}
	rec := &flipRecorder{}
	c := newTestController(feed, rec, nil)
	c.Tick()
	feed.push(10_000, 0)
	c.Tick()
	feed.push(10_000, 0)
	c.Tick() // read committed
	flips := c.Probe().Flips

	// Windows below MinOps are idle: applied phase and knobs hold.
	for i := 0; i < 5; i++ {
		feed.push(10, 0)
		if got := c.Tick(); got != PhaseRead {
			t.Fatalf("idle window %d moved phase to %v", i, got)
		}
	}
	if got := c.Probe().Flips; got != flips {
		t.Fatalf("idle windows flipped knobs: %d -> %d", flips, got)
	}
	// After idleness, a single active window must re-confirm from
	// scratch even if it classifies like the applied phase's rival.
	feed.push(0, 10_000)
	if got := c.Tick(); got != PhaseRead {
		t.Fatalf("post-idle burst committed immediately: %v", got)
	}
	feed.push(0, 10_000)
	if got := c.Tick(); got != PhaseInsert {
		t.Fatalf("confirmed post-idle burst did not commit: %v", got)
	}
}

func TestControllerSkewPhasePromotes(t *testing.T) {
	feed := &fakeFeed{}
	rec := &flipRecorder{}
	hot := NewHotKeys(64)
	c := newTestController(feed, rec, hot)
	c.Tick()

	// Make the sketch skewed: one key carries everything.
	for i := 0; i < 100_000; i++ {
		hot.Observe(777)
	}
	feed.push(10_000, 0)
	c.Tick()
	feed.push(10_000, 0)
	if got := c.Tick(); got != PhaseSkew {
		t.Fatalf("phase under zipf sketch = %v, want skew", got)
	}
	if len(rec.caches) == 0 || !rec.caches[len(rec.caches)-1] {
		t.Fatal("skew posture did not enable the cache")
	}
	if rec.promotes == 0 {
		t.Fatal("skew posture never promoted hot keys")
	}
	// Skew ticks keep promoting (the hot set drifts).
	n := rec.promotes
	feed.push(10_000, 0)
	c.Tick()
	if rec.promotes <= n {
		t.Fatal("established skew phase stopped promoting")
	}

	sn := c.Probe()
	if sn.Phase != "skew" || sn.SkewShare < 0.9 {
		t.Fatalf("probe = %+v, want skew phase with ~1.0 share", sn)
	}
}

func TestControllerNilKnobsSkipped(t *testing.T) {
	feed := &fakeFeed{}
	c := NewController(Config{
		Snapshot: feed.snapshot,
	})
	c.Tick()
	feed.push(10_000, 0)
	c.Tick()
	feed.push(0, 10_000)
	c.Tick()
	feed.push(0, 10_000)
	c.Tick() // flipping phases with every knob nil must not panic
	if c.Phase() != PhaseInsert {
		t.Fatalf("phase = %v, want insert", c.Phase())
	}
	if c.Probe().Flips != 0 {
		t.Fatalf("nil knobs counted flips: %d", c.Probe().Flips)
	}
}

func TestControllerStartStop(t *testing.T) {
	feed := &fakeFeed{}
	rec := &flipRecorder{}
	c := newTestController(feed, rec, nil)
	feed.push(10_000, 0)
	c.Start(time.Millisecond)
	defer c.Stop()
	deadline := time.After(2 * time.Second)
	for c.Probe().Ticks < 3 {
		feed.push(10_000, 0)
		select {
		case <-deadline:
			t.Fatal("controller goroutine did not tick")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop() // idempotent with the deferred Stop
	if c.Phase() != PhaseRead {
		t.Fatalf("phase after ticking loop = %v, want read", c.Phase())
	}
}
