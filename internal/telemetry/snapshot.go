package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"learnedpieces/internal/epoch"
	"learnedpieces/internal/search"
)

// OpSnapshot is the digest of one operation class: total ops, how many
// were latency-sampled, and the sampled distribution.
type OpSnapshot struct {
	Ops     int64   `json:"ops"`
	Sampled int64   `json:"sampled"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P99Ns   int64   `json:"p99_ns"`
	P999Ns  int64   `json:"p999_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// PhaseSnapshot is the digest of a rare heavyweight phase.
type PhaseSnapshot struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// StoreSnapshot is the store section of a Snapshot.
type StoreSnapshot struct {
	Put      OpSnapshot `json:"put"`
	Get      OpSnapshot `json:"get"`
	Delete   OpSnapshot `json:"delete"`
	Scan     OpSnapshot `json:"scan"`
	MultiGet OpSnapshot `json:"multiget"`

	GetMisses     int64 `json:"get_misses"`
	MultiGetKeys  int64 `json:"multiget_keys"`
	PageRollovers int64 `json:"page_rollovers"`
	Tombstones    int64 `json:"tombstones"`
	LiveKeys      int64 `json:"live_keys"`

	// Batched range-scan shape (zero when no batched scan ever ran).
	ScanBatches   int64 `json:"scan_batches"`
	ScanEntries   int64 `json:"scan_entries"`
	ScanPresorted int64 `json:"scan_presorted"`
	ScanPinYields int64 `json:"scan_pin_yields"`
	ScanReseeks   int64 `json:"scan_reseeks"`

	Recovery   PhaseSnapshot `json:"recovery"`
	Compaction PhaseSnapshot `json:"compaction"`
	BulkLoad   PhaseSnapshot `json:"bulk_load"`
}

// PMemSnapshot is the simulated device section of a Snapshot: access and
// 256-byte line counts plus the injected (stall) nanoseconds, which is
// what makes the Optane model's cost visible next to the index cost —
// the paper's "is the bottleneck the NVM or the index?" question, live.
// It doubles as the value type device probes return to the sink.
type PMemSnapshot struct {
	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	Flushes int64 `json:"flushes"`
	// LineReads / LineWrites count 256-byte device lines touched.
	LineReads  int64 `json:"line_reads"`
	LineWrites int64 `json:"line_writes"`
	// ReadStallNs / WriteStallNs are the injected latency actually paid
	// (block-buffer hits and disabled models pay nothing).
	ReadStallNs  int64 `json:"read_stall_ns"`
	WriteStallNs int64 `json:"write_stall_ns"`
}

// RetrainSnapshot is the background-retraining section of a Snapshot:
// the retrain pool's queue state and the time split between background
// work and foreground (inline) stalls — the paper's retraining cost,
// separated by where it was paid. It doubles as the value type retrain
// probes return to the sink.
type RetrainSnapshot struct {
	Workers    int   `json:"workers"`
	QueueDepth int64 `json:"queue_depth"`
	Submitted  int64 `json:"submitted"`
	Coalesced  int64 `json:"coalesced"`
	Executed   int64 `json:"executed"`
	// Inline counts retrains that ran on the submitting goroutine (all
	// of them in sync mode; queue-overflow fallbacks in async mode).
	Inline int64 `json:"inline"`
	// BackgroundNs / ForegroundNs split the retrain time by where it was
	// spent: pool workers vs the submitting (foreground) goroutine.
	BackgroundNs int64 `json:"background_ns"`
	ForegroundNs int64 `json:"foreground_ns"`
}

func (r RetrainSnapshot) add(o RetrainSnapshot) RetrainSnapshot {
	if o.Workers != 0 {
		r.Workers = o.Workers
	}
	r.QueueDepth += o.QueueDepth
	r.Submitted += o.Submitted
	r.Coalesced += o.Coalesced
	r.Executed += o.Executed
	r.Inline += o.Inline
	r.BackgroundNs += o.BackgroundNs
	r.ForegroundNs += o.ForegroundNs
	return r
}

// ServerSnapshot is the network-front-end section of a Snapshot: the
// vipersrv connection/admission state and the read-coalescer's batch
// shape — the ops surface that shows whether concurrent point reads are
// actually being aggregated into MultiGet batches (batch p50 > 1) and
// whether the in-flight window is pushing back (rejections). It doubles
// as the value type server probes return to the sink.
type ServerSnapshot struct {
	// ConnsOpen / ConnsTotal count currently open and lifetime-accepted
	// connections.
	ConnsOpen  int64 `json:"conns_open"`
	ConnsTotal int64 `json:"conns_total"`
	// InFlight is the number of admitted requests not yet answered,
	// summed over connections.
	InFlight int64 `json:"in_flight"`
	// Accepted / Rejected split admission decisions: Rejected counts
	// requests refused with a backpressure status because the
	// connection's in-flight window was full.
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// BadFrames counts undecodable or oversized frames (the connection
	// is dropped after each).
	BadFrames int64 `json:"bad_frames"`
	// BytesIn / BytesOut are wire bytes after framing.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// Coalescer shape: batches flushed, point gets they carried, and the
	// batch-size distribution. FlushFull counts size-triggered flushes,
	// FlushTimer wait-triggered ones.
	CoalesceBatches int64 `json:"coalesce_batches"`
	CoalescedGets   int64 `json:"coalesced_gets"`
	BatchP50        int64 `json:"batch_p50"`
	BatchP99        int64 `json:"batch_p99"`
	BatchMax        int64 `json:"batch_max"`
	FlushFull       int64 `json:"flush_full"`
	FlushTimer      int64 `json:"flush_timer"`
	// StalledConns counts connections dropped because their response
	// queue was full when the coalescer tried to deliver — a client
	// that stopped reading its responses.
	StalledConns int64 `json:"stalled_conns"`
	// Drains counts graceful drains served (OpDrain requests plus
	// shutdown drains).
	Drains int64 `json:"drains"`
	// CoalesceOn is the runtime state of the read coalescer's toggle
	// (the adapt controller and the OpCoalesce admin op flip it).
	CoalesceOn bool `json:"coalesce_on"`
}

func (s ServerSnapshot) add(o ServerSnapshot) ServerSnapshot {
	s.ConnsOpen += o.ConnsOpen
	s.ConnsTotal += o.ConnsTotal
	s.InFlight += o.InFlight
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.BadFrames += o.BadFrames
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.CoalesceBatches += o.CoalesceBatches
	s.CoalescedGets += o.CoalescedGets
	// Percentiles don't fold; the live probe's distribution wins when it
	// has seen batches, otherwise the retired totals' shape is kept.
	if o.CoalesceBatches > 0 {
		s.BatchP50, s.BatchP99, s.BatchMax = o.BatchP50, o.BatchP99, o.BatchMax
	}
	s.FlushFull += o.FlushFull
	s.FlushTimer += o.FlushTimer
	s.StalledConns += o.StalledConns
	s.Drains += o.Drains
	// Instantaneous toggle state: the most recently folded observation
	// wins (the live probe is always folded last at snapshot time).
	s.CoalesceOn = o.CoalesceOn
	return s
}

// AdaptSnapshot is the closed-loop controller's section of a Snapshot:
// what phase the workload was last classified as, how many knob flips
// the controller has committed, and the hot-key shadow cache's hit
// shape. It doubles as the value type adapt probes return to the sink.
type AdaptSnapshot struct {
	// Phase is the currently applied workload classification
	// ("idle", "read", "insert", "scan", "skew").
	Phase string `json:"phase"`
	// Ticks counts sampling windows examined; PhaseChanges counts
	// committed phase transitions; Flips counts individual knob changes
	// (several knobs can flip at one phase change).
	Ticks        int64 `json:"ticks"`
	Flips        int64 `json:"flips"`
	PhaseChanges int64 `json:"phase_changes"`
	// SkewShare is the frequency sketch's last top-k share estimate.
	SkewShare float64 `json:"skew_share"`
	// Shadow-cache shape. CacheHitRate is hits/(hits+misses) over the
	// cache's lifetime.
	CacheEnabled  bool    `json:"cache_enabled"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Promotions    int64   `json:"promotions"`
	Refreshes     int64   `json:"refreshes"`
	Invalidations int64   `json:"invalidations"`
}

func (a AdaptSnapshot) add(o AdaptSnapshot) AdaptSnapshot {
	// The live probe's view of the instantaneous state (phase, skew,
	// cache switch, hit rate) wins when it has run at all; the counters
	// aggregate across controller generations.
	if o.Ticks > 0 {
		a.Phase = o.Phase
		a.SkewShare = o.SkewShare
		a.CacheEnabled = o.CacheEnabled
		a.CacheHitRate = o.CacheHitRate
	}
	a.Ticks += o.Ticks
	a.Flips += o.Flips
	a.PhaseChanges += o.PhaseChanges
	a.CacheHits += o.CacheHits
	a.CacheMisses += o.CacheMisses
	a.Promotions += o.Promotions
	a.Refreshes += o.Refreshes
	a.Invalidations += o.Invalidations
	return a
}

func (p PMemSnapshot) add(o PMemSnapshot) PMemSnapshot {
	p.Reads += o.Reads
	p.Writes += o.Writes
	p.Flushes += o.Flushes
	p.LineReads += o.LineReads
	p.LineWrites += o.LineWrites
	p.ReadStallNs += o.ReadStallNs
	p.WriteStallNs += o.WriteStallNs
	return p
}

// Snapshot is the structured, JSON-stable view of a Sink at one instant.
// It is what the -obs HTTP endpoint serves, what libench writes as
// BENCH_*.json, and what the plain-text table renders. All fields are
// plain values so a Snapshot round-trips through JSON losslessly.
type Snapshot struct {
	TakenUnixNs int64         `json:"taken_unix_ns"`
	Store       StoreSnapshot `json:"store"`
	PMem        PMemSnapshot  `json:"pmem"`
	// Retrain is the retrain-pool digest; the zero value means no pool
	// was ever attached (the text renderer omits the table then).
	Retrain RetrainSnapshot `json:"retrain"`
	// Server is the network front end's digest; the zero value means no
	// server ever attached (the text renderer omits the table then).
	Server ServerSnapshot `json:"server"`
	// Adapt is the closed-loop controller's digest; the zero value means
	// no controller ever attached (the text renderer omits the table).
	Adapt   AdaptSnapshot `json:"adapt"`
	Indexes []IndexStats  `json:"indexes"`
	// SearchKernel is the process-wide last-mile kernel policy
	// (libench -searchkernel); Search carries the per-kernel search and
	// probe counters. Both are process-global like the policy itself:
	// every sink reports the same kernel state.
	SearchKernel string               `json:"search_kernel"`
	Search       []search.KernelStats `json:"search,omitempty"`
	// Epoch is the reclamation pipeline's digest: the default manager's
	// clock/advance/retire/free counters plus the optimistic-read
	// attempt/retry/fallback counters. Process-global like Search — the
	// epoch clock is shared by every store in the process.
	Epoch epoch.Stats `json:"epoch"`
}

// Snapshot digests the sink. Recording may continue concurrently; the
// result is consistent enough for reporting (each counter is read once,
// histograms are merged copies). Returns the zero Snapshot on nil.
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	// Pull the live probes first: fold the index probe into the map and
	// add the live region's counters on top of the retired totals.
	s.mu.Lock()
	probe := s.probe
	pmemProbe := s.pmemProbe
	retrainProbe := s.retrainProbe
	serverProbe := s.serverProbe
	adaptProbe := s.adaptProbe
	pm := s.pmem
	rt := s.retrain
	sv := s.server
	ad := s.adapt
	s.mu.Unlock()
	if probe != nil {
		s.record(probe())
	}
	if pmemProbe != nil {
		pm = pm.add(pmemProbe())
	}
	if retrainProbe != nil {
		rt = rt.add(retrainProbe())
	}
	if serverProbe != nil {
		sv = sv.add(serverProbe())
	}
	if adaptProbe != nil {
		ad = ad.add(adaptProbe())
	}

	m := s.Store
	snap := Snapshot{
		TakenUnixNs: time.Now().UnixNano(),
		Store: StoreSnapshot{
			Put:           m.Put.snapshot(),
			Get:           m.Get.snapshot(),
			Delete:        m.Delete.snapshot(),
			Scan:          m.Scan.snapshot(),
			MultiGet:      m.MultiGet.snapshot(),
			GetMisses:     m.GetMisses.Load(),
			MultiGetKeys:  m.MultiGetKeys.Load(),
			PageRollovers: m.PageRollovers.Load(),
			Tombstones:    m.Tombstones.Load(),
			LiveKeys:      m.LiveKeys.Load(),
			ScanBatches:   m.ScanBatches.Load(),
			ScanEntries:   m.ScanEntries.Load(),
			ScanPresorted: m.ScanPresorted.Load(),
			ScanPinYields: m.ScanPinYields.Load(),
			ScanReseeks:   m.ScanReseeks.Load(),
			Recovery:      m.Recovery.snapshot(),
			Compaction:    m.Compaction.snapshot(),
			BulkLoad:      m.BulkLoad.snapshot(),
		},
		PMem:         pm,
		Retrain:      rt,
		Server:       sv,
		Adapt:        ad,
		SearchKernel: search.CurrentPolicy().String(),
		Search:       search.StatsSnapshot(),
		Epoch:        epoch.GlobalStats(),
	}
	s.mu.Lock()
	for _, st := range s.indexes {
		snap.Indexes = append(snap.Indexes, st)
	}
	s.mu.Unlock()
	sort.Slice(snap.Indexes, func(i, j int) bool { return snap.Indexes[i].Name < snap.Indexes[j].Name })
	return snap
}

// MarshalJSON-free helpers: the snapshot is plain data, so the stdlib
// encoder round-trips it exactly (ParseSnapshot inverts WriteJSON).

// WriteJSON writes the snapshot as indented JSON.
func (sn Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var sn Snapshot
	err := json.Unmarshal(data, &sn)
	return sn, err
}
