package pla

import "learnedpieces/internal/parallel"

// Optimal streaming piecewise-linear approximation (O'Rourke 1981), the
// algorithm PGM-Index uses. Processing points (key, position) in key
// order, it maintains the interval [slopeMin, slopeMax] of slopes of
// lines that stay within eps of every point seen so far, together with
// the two convex hulls that make the update O(1) amortised:
//
//   - upper hull: lower convex hull of the points (x, y+eps), the
//     constraints a feasible line must stay below;
//   - lower hull: upper convex hull of the points (x, y-eps), the
//     constraints a feasible line must stay above.
//
// When a new point's tolerance interval falls outside the corridor spanned
// by the two extreme lines, no single line fits and the segment is closed.
// Taking maximal segments left to right yields the minimum possible number
// of segments for the given error bound.

type point struct{ x, y float64 }

func cross(o, a, b point) float64 {
	return (a.x-o.x)*(b.y-o.y) - (a.y-o.y)*(b.x-o.x)
}

func slope(a, b point) float64 { return (b.y - a.y) / (b.x - a.x) }

// optState is the per-segment state of the streaming algorithm. All
// coordinates are local: x = key - firstKey, y = position - startPos.
type optState struct {
	firstKey uint64
	eps      float64
	n        int // points accepted so far

	upperHull []point // lower convex hull of (x, y+eps)
	lowerHull []point // upper convex hull of (x, y-eps)

	slopeMin, slopeMax float64
	minPivot, maxPivot point // right pivot points of the extreme lines
	minTan, maxTan     int   // tangent vertex indices on the hulls
}

func newOptState(firstKey uint64, eps int) *optState {
	return &optState{firstKey: firstKey, eps: float64(eps)}
}

// add offers the n-th local point; it returns false when the point cannot
// join the current segment.
func (s *optState) add(key uint64, pos int) bool {
	x := float64(key - s.firstKey)
	y := float64(pos)
	u := point{x, y + s.eps}
	l := point{x, y - s.eps}

	switch s.n {
	case 0:
		s.upperHull = append(s.upperHull[:0], u)
		s.lowerHull = append(s.lowerHull[:0], l)
		s.n = 1
		return true
	case 1:
		s.slopeMin = slope(s.upperHull[0], l)
		s.slopeMax = slope(s.lowerHull[0], u)
		s.minPivot, s.maxPivot = l, u
		s.minTan, s.maxTan = 0, 0
		s.pushHulls(u, l)
		s.n = 2
		return true
	}

	// Feasibility: the new tolerance interval must intersect the corridor.
	minAt := s.minPivot.y + s.slopeMin*(x-s.minPivot.x)
	maxAt := s.maxPivot.y + s.slopeMax*(x-s.maxPivot.x)
	if y+s.eps < minAt || y-s.eps > maxAt {
		return false
	}

	// Tighten the minimum slope: the lower constraint at x pushes it up.
	if y-s.eps > minAt {
		// New min-slope line passes through l and is tangent to the lower
		// hull of upper constraints; the tangent vertex only moves forward.
		if s.minTan >= len(s.upperHull) {
			s.minTan = len(s.upperHull) - 1
		}
		for s.minTan+1 < len(s.upperHull) &&
			slope(s.upperHull[s.minTan+1], l) >= slope(s.upperHull[s.minTan], l) {
			s.minTan++
		}
		s.slopeMin = slope(s.upperHull[s.minTan], l)
		s.minPivot = l
		// Vertices before the tangent can never bind again.
		if s.minTan > 0 {
			s.upperHull = s.upperHull[s.minTan:]
			s.minTan = 0
		}
	}

	// Tighten the maximum slope symmetrically.
	if y+s.eps < maxAt {
		if s.maxTan >= len(s.lowerHull) {
			s.maxTan = len(s.lowerHull) - 1
		}
		for s.maxTan+1 < len(s.lowerHull) &&
			slope(s.lowerHull[s.maxTan+1], u) <= slope(s.lowerHull[s.maxTan], u) {
			s.maxTan++
		}
		s.slopeMax = slope(s.lowerHull[s.maxTan], u)
		s.maxPivot = u
		if s.maxTan > 0 {
			s.lowerHull = s.lowerHull[s.maxTan:]
			s.maxTan = 0
		}
	}

	s.pushHulls(u, l)
	s.n++
	return true
}

// pushHulls appends the new constraint points, restoring convexity.
func (s *optState) pushHulls(u, l point) {
	// Lower convex hull of upper constraints: pop while the turn is not
	// counter-clockwise.
	for len(s.upperHull) >= 2 &&
		cross(s.upperHull[len(s.upperHull)-2], s.upperHull[len(s.upperHull)-1], u) <= 0 {
		s.upperHull = s.upperHull[:len(s.upperHull)-1]
	}
	s.upperHull = append(s.upperHull, u)
	if s.minTan >= len(s.upperHull) {
		s.minTan = len(s.upperHull) - 1
	}
	// Upper convex hull of lower constraints: pop while not clockwise.
	for len(s.lowerHull) >= 2 &&
		cross(s.lowerHull[len(s.lowerHull)-2], s.lowerHull[len(s.lowerHull)-1], l) >= 0 {
		s.lowerHull = s.lowerHull[:len(s.lowerHull)-1]
	}
	s.lowerHull = append(s.lowerHull, l)
	if s.maxTan >= len(s.lowerHull) {
		s.maxTan = len(s.lowerHull) - 1
	}
}

// segmentSlope returns a feasible slope for the accepted points.
func (s *optState) segmentSlope() float64 {
	if s.n < 2 {
		return 0
	}
	return (s.slopeMin + s.slopeMax) / 2
}

// BuildOptPLAChunked segments keys with the optimal streaming PLA, fanned
// out over workers: the key array splits into contiguous chunks, each
// chunk is segmented independently, and the per-chunk segments are
// rebased to global positions and concatenated. Every segment still
// satisfies MaxErr <= eps; the cost of parallelism is at most workers-1
// extra segments (each chunk boundary may force a split the streaming
// pass would not have taken). workers <= 1 falls back to BuildOptPLA.
func BuildOptPLAChunked(keys []uint64, eps, workers int) []Segment {
	const minPerChunk = 16 << 10
	if workers > len(keys)/minPerChunk {
		workers = len(keys) / minPerChunk
	}
	if workers <= 1 {
		return BuildOptPLA(keys, eps)
	}
	chunks := make([][]Segment, workers)
	parallel.For(workers, len(keys), func(w, lo, hi int) {
		segs := BuildOptPLA(keys[lo:hi], eps)
		for i := range segs {
			segs[i].Start += lo
			segs[i].End += lo
			segs[i].Intercept += float64(lo)
		}
		chunks[w] = segs
	})
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	segs := make([]Segment, 0, total)
	for _, c := range chunks {
		segs = append(segs, c...)
	}
	return segs
}

// BuildOptPLA segments keys with the optimal streaming PLA. Every returned
// segment satisfies MaxErr <= eps, and the number of segments is the
// minimum achievable for that bound (up to float rounding at segment
// boundaries).
func BuildOptPLA(keys []uint64, eps int) []Segment {
	if len(keys) == 0 {
		return nil
	}
	if eps < 0 {
		eps = 0
	}
	var segs []Segment
	start := 0
	st := newOptState(keys[0], eps)
	for i := 0; i <= len(keys); i++ {
		if i < len(keys) && st.add(keys[i], i-start) {
			continue
		}
		segs = append(segs, clampedSegment(keys, start, i, st.segmentSlope(), eps))
		if i < len(keys) {
			start = i
			st = newOptState(keys[i], eps)
			st.add(keys[i], 0)
		}
	}
	return segs
}
