// Command pieceslint runs the repository's invariant analyzer suite
// (internal/analysis) and exits non-zero when any contract is violated.
//
// Usage:
//
//	go run ./cmd/pieceslint ./...
//	go run ./cmd/pieceslint ./internal/viper/...
//
// Findings print one per line as path:line:col: analyzer: message.
// Intentional exceptions live in pieceslint.allow at the module root;
// stale entries there are reported as warnings so the file stays tight.
// CI runs `go run ./cmd/pieceslint ./...` as a required step.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"learnedpieces/internal/analysis"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary line on a clean run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pieceslint [-q] [pattern ...]\n\npatterns are package directories relative to the module root,\noptionally ending in /... for a recursive walk (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pieceslint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pieceslint:", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	for _, e := range res.Unused {
		fmt.Fprintf(os.Stderr, "pieceslint: warning: %s:%d: allowlist entry %q %q matched nothing; delete it\n",
			analysis.AllowlistFile, e.Line, e.Analyzer, e.Path)
	}
	if n := len(res.Diags); n > 0 {
		fmt.Fprintf(os.Stderr, "pieceslint: %d finding(s), %d suppressed by %s\n", n, len(res.Suppressed), analysis.AllowlistFile)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("pieceslint: clean (%d finding(s) suppressed by %s)\n", len(res.Suppressed), analysis.AllowlistFile)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
