// Package cceh implements extendible hashing in the style of CCEH
// (cacheline-conscious extendible hashing): a directory of fixed-size
// segments, each probed linearly from a home bucket, with segment splits
// and directory doubling. It plays the role the paper assigns CCEH: the
// unsorted upper bound (the black horizontal line in Figs 10/12/13/15).
// Scans are not supported.
package cceh

import (
	"sync"

	"learnedpieces/internal/index"
)

const (
	bucketBits   = 8 // 256 home buckets per segment
	numBuckets   = 1 << bucketBits
	bucketSlots  = 4 // one cache line of entries
	segmentSlots = numBuckets * bucketSlots
	// insertProbe bounds how far Insert will probe before splitting the
	// segment; splitProbe is the (much larger) bound used while
	// redistributing entries into half-empty segments.
	insertProbe = 32
	splitProbe  = segmentSlots
)

type slotState uint8

const (
	slotEmpty slotState = iota
	slotUsed
	slotTomb // tombstone: keeps probe chains intact after Delete
)

type segment struct {
	localDepth uint
	count      int
	keys       [segmentSlots]uint64
	vals       [segmentSlots]uint64
	state      [segmentSlots]slotState
}

// Map is the extendible hash table. Reads may run concurrently with each
// other; a RWMutex protects mutation and directory swaps.
type Map struct {
	mu          sync.RWMutex
	globalDepth uint
	dir         []*segment
	length      int
}

// New returns an empty hash map with a two-segment directory.
func New() *Map {
	m := &Map{globalDepth: 1, dir: make([]*segment, 2)}
	m.dir[0] = &segment{localDepth: 1}
	m.dir[1] = &segment{localDepth: 1}
	return m
}

// Name implements index.Index.
func (m *Map) Name() string { return "cceh" }

// Len returns the number of stored entries.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.length
}

// ConcurrentReads reports that concurrent Gets are safe.
func (m *Map) ConcurrentReads() bool { return true }

func hash(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func (m *Map) segmentFor(h uint64) *segment {
	return m.dir[h>>(64-m.globalDepth)]
}

func homeSlot(h uint64) int {
	return int(h&(numBuckets-1)) * bucketSlots
}

// Get returns the value stored under key. Probing stops at the first
// empty (never-used) slot, which linear probing with tombstones keeps
// as a correct terminator.
func (m *Map) Get(key uint64) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.getLocked(key)
}

// getLocked probes for key; the caller holds m.mu (read or write).
func (m *Map) getLocked(key uint64) (uint64, bool) {
	h := hash(key)
	s := m.segmentFor(h)
	start := homeSlot(h)
	for i := 0; i < segmentSlots; i++ {
		j := (start + i) & (segmentSlots - 1)
		switch s.state[j] {
		case slotEmpty:
			return 0, false
		case slotUsed:
			if s.keys[j] == key {
				return s.vals[j], true
			}
		}
	}
	return 0, false
}

// Insert stores value under key, replacing any existing value. Segments
// whose probe chains grow past insertProbe are split (doubling the
// directory when the local depth reaches the global depth).
func (m *Map) Insert(key, value uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		h := hash(key)
		s := m.segmentFor(h)
		if insertInto(s, h, key, value, insertProbe, &m.length) {
			return nil
		}
		m.split(h)
	}
}

// InsertReplace implements index.Upserter: the existence probe and the
// insert run under the same map lock.
func (m *Map) InsertReplace(key, value uint64) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, existed := m.getLocked(key)
	for {
		h := hash(key)
		s := m.segmentFor(h)
		if insertInto(s, h, key, value, insertProbe, &m.length) {
			return existed, nil
		}
		m.split(h)
	}
}

// insertInto scans the probe chain from the home bucket up to the first
// empty slot, updating the key in place if present. A new key is placed
// in the first free slot (tombstone or empty) no further than maxProbe
// from home — placing at or before the first empty slot preserves the
// invariant that every key is reachable before the chain's terminator.
// Returns false when no slot within maxProbe is free.
func insertInto(s *segment, h uint64, key, value uint64, maxProbe int, length *int) bool {
	start := homeSlot(h)
	free := -1
	for i := 0; i < segmentSlots; i++ {
		j := (start + i) & (segmentSlots - 1)
		st := s.state[j]
		if st == slotUsed {
			if s.keys[j] == key {
				s.vals[j] = value
				return true
			}
			continue
		}
		if free < 0 && i < maxProbe {
			free = j
		}
		if st == slotEmpty {
			break
		}
	}
	if free < 0 {
		return false
	}
	s.keys[free] = key
	s.vals[free] = value
	s.state[free] = slotUsed
	s.count++
	if length != nil {
		*length++
	}
	return true
}

// split replaces the segment containing hash h with two segments of
// local depth +1, redistributing entries by the next hash bit.
func (m *Map) split(h uint64) {
	old := m.segmentFor(h)
	if old.localDepth == m.globalDepth {
		nd := make([]*segment, len(m.dir)*2)
		for i, s := range m.dir {
			nd[2*i] = s
			nd[2*i+1] = s
		}
		m.dir = nd
		m.globalDepth++
	}
	depth := old.localDepth + 1
	s0 := &segment{localDepth: depth}
	s1 := &segment{localDepth: depth}
	bit := uint64(1) << (64 - depth)
	for j := 0; j < segmentSlots; j++ {
		if old.state[j] != slotUsed {
			continue
		}
		hh := hash(old.keys[j])
		dst := s0
		if hh&bit != 0 {
			dst = s1
		}
		if !insertInto(dst, hh, old.keys[j], old.vals[j], splitProbe, nil) {
			panic("cceh: segment overflow during split")
		}
	}
	// Rewire every directory slot that pointed at old: the aligned block of
	// 2*stride entries splits into the s0 half and the s1 half.
	stride := 1 << (m.globalDepth - depth)
	first := int(h>>(64-m.globalDepth)) &^ (stride*2 - 1)
	for i := 0; i < stride; i++ {
		m.dir[first+i] = s0
		m.dir[first+stride+i] = s1
	}
}

// Delete removes key (leaving a tombstone) and reports whether it was
// present.
func (m *Map) Delete(key uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := hash(key)
	s := m.segmentFor(h)
	start := homeSlot(h)
	for i := 0; i < segmentSlots; i++ {
		j := (start + i) & (segmentSlots - 1)
		switch s.state[j] {
		case slotEmpty:
			return false
		case slotUsed:
			if s.keys[j] == key {
				s.state[j] = slotTomb
				s.count--
				m.length--
				return true
			}
		}
	}
	return false
}

// BulkLoad inserts all keys; hashing has no faster build path.
func (m *Map) BulkLoad(keys, values []uint64) error {
	for i, k := range keys {
		var v uint64
		if values != nil {
			v = values[i]
		}
		if err := m.Insert(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Sizes reports the footprint: directory plus all distinct segments;
// slack segment space counts as structure, live entries as key/value.
func (m *Map) Sizes() index.Sizes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[*segment]bool)
	for _, s := range m.dir {
		seen[s] = true
	}
	segBytes := int64(len(seen)) * int64(segmentSlots) * 17 // 2x8B + state byte
	return index.Sizes{
		Structure: int64(len(m.dir))*8 + segBytes - int64(m.length)*16,
		Keys:      int64(m.length) * 8,
		Values:    int64(m.length) * 8,
	}
}
