package core

import (
	"fmt"
	"testing"

	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
)

// TestIndexDatasetMatrix runs every registry index against every key
// distribution: bulk load (or insert), point lookups, negative lookups,
// mid-stream inserts and a bounded ordered scan. This is the robustness
// net behind the paper's "fair environment" claim — all indexes must be
// correct on all datasets before their performance is compared.
func TestIndexDatasetMatrix(t *testing.T) {
	const n = 8000
	for _, e := range Registry() {
		for _, kind := range dataset.Kinds() {
			e, kind := e, kind
			t.Run(fmt.Sprintf("%s/%s", e.Name, kind), func(t *testing.T) {
				keys := dataset.Generate(kind, n, 77)
				load, inserts := dataset.Split(keys, n/4)
				idx := e.New()

				if b, ok := idx.(index.Bulk); ok {
					if err := b.BulkLoad(load, load); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, k := range load {
						if err := idx.Insert(k, k); err != nil {
							t.Fatal(err)
						}
					}
				}

				// Point lookups over the loaded set.
				for i := 0; i < len(load); i += 7 {
					if v, ok := idx.Get(load[i]); !ok || v != load[i] {
						t.Fatalf("get(%d) = %d,%v", load[i], v, ok)
					}
				}
				// The held-out keys must be absent.
				for i := 0; i < len(inserts); i += 5 {
					if _, ok := idx.Get(inserts[i]); ok {
						t.Fatalf("absent key %d found", inserts[i])
					}
				}

				// Mid-stream inserts (skipped for read-only indexes).
				writable := true
				for _, k := range dataset.Shuffled(inserts, 78) {
					if err := idx.Insert(k, k^1); err != nil {
						if err == index.ErrReadOnly {
							writable = false
							break
						}
						t.Fatal(err)
					}
				}
				if writable {
					if idx.Len() != len(keys) {
						t.Fatalf("Len = %d, want %d", idx.Len(), len(keys))
					}
					for i := 0; i < len(inserts); i += 3 {
						if v, ok := idx.Get(inserts[i]); !ok || v != inserts[i]^1 {
							t.Fatalf("inserted key %d: %d,%v", inserts[i], v, ok)
						}
					}
				}

				// Bounded ordered scan from a midpoint (ordered indexes).
				if sc, ok := idx.(index.Scanner); ok && e.Name != "cceh" {
					start := keys[len(keys)/2]
					prev := uint64(0)
					cnt := 0
					sc.Scan(start, 64, func(k, v uint64) bool {
						if k < start {
							t.Fatalf("scan returned %d < start %d", k, start)
						}
						if cnt > 0 && k <= prev {
							t.Fatalf("scan out of order: %d after %d", k, prev)
						}
						prev = k
						cnt++
						return true
					})
					if cnt == 0 {
						t.Fatal("bounded scan returned nothing")
					}
				}
			})
		}
	}
}
