package viper

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/pmem"
)

// TestCrashRecoveryAtRandomPoints is a crash-consistency property test:
// apply a random op stream, snapshot the PMem at arbitrary points
// ("crash"), restore the snapshot into a fresh store, recover, and check
// the recovered state equals the reference state at the snapshot moment.
func TestCrashRecoveryAtRandomPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	region := pmem.NewRegion(64<<20, pmem.None())
	store := Open(region, btree.New())
	ref := make(map[uint64]string)

	type snap struct {
		mem []byte
		ref map[uint64]string
		// page layout must be restored as well; capture the page offsets.
		pages []int64
	}
	var snaps []snap

	keyspace := func() uint64 { return uint64(rng.Intn(500) + 1) }
	for op := 0; op < 4000; op++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // put
			k := keyspace()
			v := fmt.Sprintf("v%d-%d", k, op)
			if err := store.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 3: // delete
			k := keyspace()
			_, want := ref[k]
			got, err := store.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("op %d: delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 4:
			if rng.Intn(10) == 0 && len(snaps) < 8 {
				refCopy := make(map[uint64]string, len(ref))
				for k, v := range ref {
					refCopy[k] = v
				}
				snaps = append(snaps, snap{
					mem:   region.Snapshot(),
					ref:   refCopy,
					pages: append([]int64(nil), store.pages...),
				})
			}
		}
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken; adjust probabilities")
	}

	for i, s := range snaps {
		crashRegion := pmem.NewRegion(64<<20, pmem.None())
		crashRegion.Restore(s.mem)
		crashed := Open(crashRegion, btree.New())
		crashed.pages = append([]int64(nil), s.pages...)
		if err := crashed.Recover(btree.New()); err != nil {
			t.Fatalf("snapshot %d: recover: %v", i, err)
		}
		if crashed.Len() != len(s.ref) {
			t.Fatalf("snapshot %d: recovered %d keys, want %d", i, crashed.Len(), len(s.ref))
		}
		for k, v := range s.ref {
			got, ok := crashed.Get(k)
			if !ok || !bytes.Equal(got, []byte(v)) {
				t.Fatalf("snapshot %d: get(%d) = %q,%v want %q", i, k, got, ok, v)
			}
		}
	}
}
