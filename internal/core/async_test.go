package core

import (
	"testing"

	"learnedpieces/internal/index"
	"learnedpieces/internal/indextest"
)

// TestAsyncRetrainEquivalence runs the sync-vs-async retraining
// property over every registry index that opts into background
// retraining: identical reads after identical writes, regardless of
// where the retrains ran. Indexes without the capability are skipped
// by the helper.
func TestAsyncRetrainEquivalence(t *testing.T) {
	for _, e := range Registry() {
		e := e
		if _, ok := e.New().(index.AsyncRetrainer); !ok {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			indextest.RunAsyncEquivalence(t, e.Name, e.New)
		})
	}
}
