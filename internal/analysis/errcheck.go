package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// UncheckedError flags statement-level calls whose error result is
// silently dropped in non-test code. The sanctioned discard is an
// explicit `_ =` assignment, which survives review as a visible
// decision; a bare call statement does not.
//
// Always-succeeding writers are excluded so rendering code stays
// readable: everything in package fmt (its Fprint family only fails on
// a failing writer, which the callers here are not measuring), and the
// in-memory builders strings.Builder / bytes.Buffer whose Write methods
// are documented to always return a nil error.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "no silently discarded error results in non-test code",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass.Pkg.Info, call) || errExcluded(pass.Pkg.Info, call) {
					return true
				}
				pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign to _ explicitly", renderCallee(pass, call))
				return true
			})
		}
	},
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.IsType() {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return t != nil && types.Identical(t, errType)
	}
}

// errExcluded implements the built-in exclusions.
func errExcluded(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	recv := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return recv == "strings.Builder" || recv == "bytes.Buffer"
}

// renderCallee prints the call's function expression (e.g. f.Close).
func renderCallee(pass *Pass, call *ast.CallExpr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.fset, call.Fun); err != nil {
		return "call"
	}
	return buf.String()
}
