package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersCaps(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	SetWorkers(8)
	if w := Workers(100); w != 8 {
		t.Fatalf("Workers(100) with override 8 = %d", w)
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) with override 8 = %d", w)
	}
	SetWorkers(0)
	if w := Workers(1 << 30); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers default = %d, want GOMAXPROCS", w)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const n = 1000
		hits := make([]int32, n)
		For(workers, n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			if lo >= hi {
				t.Errorf("workers=%d: empty chunk [%d,%d)", workers, lo, hi)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: position %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForSmallInputRunsInline(t *testing.T) {
	ran := 0
	For(8, 1, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 1 {
			t.Fatalf("got (%d,%d,%d)", w, lo, hi)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("body ran %d times", ran)
	}
	For(4, 0, func(w, lo, hi int) { t.Fatal("body ran for n=0") })
}

func TestForErrReturnsLowestChunkError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForErr(4, 400, func(w, lo, hi int) error {
		switch w {
		case 1:
			return errB
		case 0:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-chunk error %v", err, errA)
	}
	if err := ForErr(4, 400, func(w, lo, hi int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
