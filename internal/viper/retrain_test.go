package viper

import (
	"bytes"
	"fmt"
	"testing"

	"learnedpieces/internal/learned/fitting"
	"learnedpieces/internal/pmem"
	"learnedpieces/internal/telemetry"
)

// TestRetrainModes runs the same workload under every retrain mode and
// checks the store reads back identically; async additionally must
// report background executions in the pool stats.
func TestRetrainModes(t *testing.T) {
	for _, mode := range []RetrainMode{RetrainInline, RetrainSync, RetrainAsync} {
		mode := mode
		t.Run(fmt.Sprintf("mode-%d", mode), func(t *testing.T) {
			region := pmem.NewRegion(64<<20, pmem.None())
			sink := telemetry.New()
			store := Open(region, fitting.New(fitting.DefaultConfig()),
				WithRetrainMode(mode), WithTelemetry(sink))
			ref := make(map[uint64][]byte)
			for i := uint64(1); i <= 6000; i++ {
				k := i * 2654435761 % 100000
				v := []byte(fmt.Sprintf("v%d-%d", k, i))
				if err := store.Put(k, v); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			}
			store.DrainRetrains()
			if store.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", store.Len(), len(ref))
			}
			for k, v := range ref {
				got, ok := store.Get(k)
				if !ok || !bytes.Equal(got, v) {
					t.Fatalf("get(%d) = %q,%v want %q", k, got, ok, v)
				}
			}
			snap := sink.Snapshot()
			switch mode {
			case RetrainInline:
				if snap.Retrain.Submitted != 0 {
					t.Fatalf("inline mode submitted %d pool tasks", snap.Retrain.Submitted)
				}
			case RetrainSync:
				if snap.Retrain.Submitted == 0 || snap.Retrain.Inline != snap.Retrain.Executed {
					t.Fatalf("sync mode stats: %+v", snap.Retrain)
				}
				if snap.Retrain.ForegroundNs == 0 {
					t.Fatal("sync mode reported no foreground stall")
				}
			case RetrainAsync:
				if snap.Retrain.Executed <= snap.Retrain.Inline {
					t.Fatalf("async mode ran nothing in the background: %+v", snap.Retrain)
				}
			}
		})
	}
}

// TestRecoverWithPendingRetrains crashes the store while background
// retrains are still queued: recovery scans PMem (which every Put
// already reached) and must rebuild complete state; the stale deposits
// of the dropped index must never surface.
func TestRecoverWithPendingRetrains(t *testing.T) {
	region := pmem.NewRegion(64<<20, pmem.None())
	store := Open(region, fitting.New(fitting.DefaultConfig()),
		WithRetrainMode(RetrainAsync))
	ref := make(map[uint64][]byte)
	for i := uint64(1); i <= 8000; i++ {
		k := i * 2654435761 % 200000
		v := []byte(fmt.Sprintf("v%d-%d", k, i))
		if err := store.Put(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	// Crash without draining: the DRAM index (and whatever retrains it
	// still had in flight) is discarded.
	store.DropIndex(fitting.New(fitting.DefaultConfig()))
	if err := store.Recover(fitting.New(fitting.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(ref) {
		t.Fatalf("recovered %d keys, want %d", store.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := store.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("get(%d) = %q,%v want %q", k, got, ok, v)
		}
	}
	// The recovered index inherits the pool: further Puts retrain in the
	// background again and the store still reads back correctly.
	for i := uint64(1); i <= 4000; i++ {
		k := i*2654435761%200000 + 300000
		v := []byte(fmt.Sprintf("p%d", i))
		if err := store.Put(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	store.DrainRetrains()
	for k, v := range ref {
		got, ok := store.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("post-recovery get(%d) = %q,%v want %q", k, got, ok, v)
		}
	}
}
