package index

import "testing"

// fakeBase implements only the mandatory Index interface.
type fakeBase struct{}

func (fakeBase) Name() string                   { return "fake" }
func (fakeBase) Get(uint64) (uint64, bool)      { return 0, false }
func (fakeBase) Insert(key, value uint64) error { return nil }
func (fakeBase) Len() int                       { return 0 }

// fakeFull implements every optional interface.
type fakeFull struct {
	fakeBase
}

func (fakeFull) BulkLoad(keys, values []uint64) error     { return nil }
func (fakeFull) Scan(uint64, int, func(k, v uint64) bool) {}
func (fakeFull) Delete(uint64) bool                       { return false }
func (fakeFull) InsertReplace(k, v uint64) (bool, error)  { return false, nil }
func (fakeFull) Sizes() Sizes                             { return Sizes{Structure: 1} }
func (fakeFull) AvgDepth() float64                        { return 2 }
func (fakeFull) RetrainStats() (int64, int64)             { return 3, 4 }
func (fakeFull) ConcurrentReads() bool                    { return true }
func (fakeFull) ConcurrentWrites() bool                   { return false }

// fakeCapser overrides interface probing entirely.
type fakeCapser struct{ fakeFull }

func (fakeCapser) Caps() Caps { return Caps{Scan: true} }

func TestCapsOfBase(t *testing.T) {
	if got := CapsOf(fakeBase{}); got != (Caps{}) {
		t.Fatalf("CapsOf(base) = %+v, want zero", got)
	}
}

func TestCapsOfFull(t *testing.T) {
	got := CapsOf(fakeFull{})
	want := Caps{
		Bulk: true, Scan: true, Delete: true, Upsert: true,
		Sized: true, Depth: true, Retrain: true,
		ConcurrentReads: true, ConcurrentWrites: false,
	}
	if got != want {
		t.Fatalf("CapsOf(full) = %+v, want %+v", got, want)
	}
}

// scanMasked has a Scan method its composition cannot honour; Capser is
// now the only protocol for masking it (the former ScanChecker fold-in
// was deleted), so Caps must come back with Scan cleared even though the
// Scanner interface is satisfied.
type scanMasked struct{ fakeFull }

func (m scanMasked) Caps() Caps {
	c := CapsOf(m.fakeFull)
	c.Scan = false
	return c
}

func TestCapsOfFoldsScanChecker(t *testing.T) {
	if _, ok := interface{}(scanMasked{}).(Scanner); !ok {
		t.Fatal("scanMasked must still satisfy Scanner for the test to mean anything")
	}
	if CapsOf(scanMasked{}).Scan {
		t.Fatal("Capser masking must clear Caps.Scan despite the Scan method")
	}
	if !CapsOf(fakeFull{}).Scan {
		t.Fatal("unmasked Scanner must report Caps.Scan")
	}
}

func TestCapsOfPrefersCapser(t *testing.T) {
	got := CapsOf(fakeCapser{})
	if got != (Caps{Scan: true}) {
		t.Fatalf("CapsOf(capser) = %+v, want Caps{Scan:true}", got)
	}
}

func TestHelperExtractors(t *testing.T) {
	full := fakeFull{}
	if sz, ok := SizesOf(full); !ok || sz.Structure != 1 {
		t.Fatalf("SizesOf = %+v,%v", sz, ok)
	}
	if d, ok := DepthOf(full); !ok || d != 2 {
		t.Fatalf("DepthOf = %v,%v", d, ok)
	}
	if c, ns, ok := RetrainStatsOf(full); !ok || c != 3 || ns != 4 {
		t.Fatalf("RetrainStatsOf = %d,%d,%v", c, ns, ok)
	}
	base := fakeBase{}
	if _, ok := SizesOf(base); ok {
		t.Fatal("SizesOf(base) should report false")
	}
	if _, ok := DepthOf(base); ok {
		t.Fatal("DepthOf(base) should report false")
	}
	if _, _, ok := RetrainStatsOf(base); ok {
		t.Fatal("RetrainStatsOf(base) should report false")
	}
}
