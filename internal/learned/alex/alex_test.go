package alex

import (
	"testing"

	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
	"learnedpieces/internal/indextest"
)

func TestConformance(t *testing.T) {
	indextest.RunAll(t, "alex", func() index.Index {
		return New(Config{MaxLeafKeys: 128})
	})
}

func TestAsymmetricDepth(t *testing.T) {
	// YCSB-like keys: ALEX's depth should be near 1 (Table II: 1.03),
	// OSM-like should be deeper (Table II: 1.89).
	build := func(kind dataset.Kind) *Index {
		ix := New(Config{MaxLeafKeys: 512})
		keys := dataset.Generate(kind, 200000, 11)
		if err := ix.BulkLoad(keys, keys); err != nil {
			t.Fatal(err)
		}
		return ix
	}
	y := build(dataset.YCSBNormal).AvgDepth()
	o := build(dataset.OSMLike).AvgDepth()
	if y < 1 {
		t.Fatalf("YCSB depth %f < 1", y)
	}
	if o < y {
		t.Fatalf("OSM depth %f not deeper than YCSB %f", o, y)
	}
}

func TestHeavyInsertGrowth(t *testing.T) {
	ix := New(Config{MaxLeafKeys: 256})
	keys := dataset.Generate(dataset.YCSBUniform, 30000, 13)
	for _, k := range dataset.Shuffled(keys, 14) {
		if err := ix.Insert(k, k^7); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(keys))
	}
	exp, spl := ix.ExpandSplitCounts()
	if exp == 0 || spl == 0 {
		t.Fatalf("expected both expansions and splits, got %d/%d", exp, spl)
	}
	for _, k := range keys {
		if v, ok := ix.Get(k); !ok || v != k^7 {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
	// Chain covers everything in order.
	prev := uint64(0)
	n := 0
	ix.Scan(0, 0, func(k, v uint64) bool {
		if n > 0 && k <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = k
		n++
		return true
	})
	if n != len(keys) {
		t.Fatalf("scan visited %d, want %d", n, len(keys))
	}
}

func TestGapInsertLittleMovement(t *testing.T) {
	// After bulk load at density 0.7, most inserts should land in a gap
	// without needing an expansion immediately.
	ix := New(Config{MaxLeafKeys: 1024})
	keys := dataset.Generate(dataset.YCSBNormal, 50000, 15)
	load, ins := dataset.Split(keys, 5000)
	if err := ix.BulkLoad(load, load); err != nil {
		t.Fatal(err)
	}
	r0, _ := ix.RetrainStats()
	for _, k := range ins {
		if err := ix.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := ix.RetrainStats()
	// 5000 inserts into ~30% headroom should retrain far less than once
	// per 100 inserts (the paper reports one retrain per ~200k inserts at
	// full scale).
	if r1-r0 > int64(len(ins)/100) {
		t.Fatalf("too many retrains: %d for %d inserts", r1-r0, len(ins))
	}
}

func TestSequentialAppendPattern(t *testing.T) {
	// Paper §V-B2: sequential inserts always land at the end; make sure
	// correctness holds under this adversarial pattern.
	ix := New(Config{MaxLeafKeys: 128})
	for i := 1; i <= 10000; i++ {
		if err := ix.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10000; i++ {
		if v, ok := ix.Get(uint64(i)); !ok || v != uint64(i) {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestRootDataNodeSplit grows an index from empty until the root data
// node must become a tree (the len(path)==0 split branch).
func TestRootDataNodeSplit(t *testing.T) {
	ix := New(Config{MaxLeafKeys: 64})
	keys := dataset.Generate(dataset.YCSBUniform, 2000, 17)
	for _, k := range keys {
		if err := ix.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, isData := ix.root.(*dataNode); isData {
		t.Fatal("root never split into a tree")
	}
	for _, k := range keys {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("key %d lost across root split", k)
		}
	}
}

// TestDownwardSplitDeepens forces a data node that owns a single parent
// slot to split downward, creating the asymmetric depth growth.
func TestDownwardSplitDeepens(t *testing.T) {
	ix := New(Config{MaxLeafKeys: 64, MaxFanout: 4})
	// A hot cluster plus sparse outliers: the cluster concentrates in few
	// parent slots and must deepen.
	var keys []uint64
	for i := uint64(0); i < 3000; i++ {
		keys = append(keys, 1_000_000+i)
	}
	keys = append(keys, 1, 1<<50, 1<<60)
	for _, k := range dataset.Shuffled(dataset.SortedUnique(keys), 18) {
		if err := ix.Insert(k, k^3); err != nil {
			t.Fatal(err)
		}
	}
	if d := ix.AvgDepth(); d < 1.5 {
		t.Fatalf("expected deepened tree, depth %.2f", d)
	}
	for _, k := range keys {
		if v, ok := ix.Get(k); !ok || v != k^3 {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestDeleteThenReinsertIntoGaps(t *testing.T) {
	ix := New(Config{MaxLeafKeys: 256})
	keys := dataset.Generate(dataset.YCSBNormal, 5000, 19)
	if err := ix.BulkLoad(keys, keys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 2 {
		if !ix.Delete(keys[i]) {
			t.Fatalf("delete(%d)", keys[i])
		}
	}
	for i := 0; i < len(keys); i += 2 {
		if err := ix.Insert(keys[i], keys[i]+1); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i, k := range keys {
		want := k
		if i%2 == 0 {
			want = k + 1
		}
		if v, ok := ix.Get(k); !ok || v != want {
			t.Fatalf("get(%d) = %d,%v want %d", k, v, ok, want)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	ix := New(DefaultConfig())
	keys := dataset.Generate(dataset.YCSBNormal, 1_000_000, 1)
	if err := ix.BulkLoad(keys, keys); err != nil {
		b.Fatal(err)
	}
	probes := dataset.Shuffled(keys, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(probes[i%len(probes)])
	}
}

func BenchmarkInsert(b *testing.B) {
	keys := dataset.Generate(dataset.YCSBNormal, 2_000_000, 3)
	load, ins := dataset.Split(keys, 1_000_000)
	ix := New(DefaultConfig())
	if err := ix.BulkLoad(load, load); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := ins[i%len(ins)]
		ix.Insert(k, k)
	}
}
