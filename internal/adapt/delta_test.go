package adapt

import (
	"testing"

	"learnedpieces/internal/search"
	"learnedpieces/internal/telemetry"
)

// snap builds a synthetic telemetry snapshot with the op counters the
// delta math consumes.
func snap(gets, puts, deletes, scans, batches, batchKeys int64) telemetry.Snapshot {
	var s telemetry.Snapshot
	s.Store.Get.Ops = gets
	s.Store.Put.Ops = puts
	s.Store.Delete.Ops = deletes
	s.Store.Scan.Ops = scans
	s.Store.MultiGet.Ops = batches
	s.Store.MultiGetKeys = batchKeys
	return s
}

func TestComputeDeltaDiffsWindows(t *testing.T) {
	prev := snap(1000, 200, 50, 10, 5, 40)
	prev.Retrain.Submitted = 3
	prev.Retrain.ForegroundNs = 1e6
	prev.Epoch.ReadAttempts = 1000
	prev.Epoch.ReadRetries = 10
	prev.Search = []search.KernelStats{
		{Kernel: "binary", Searches: 100, Probes: 800},
	}

	cur := snap(1600, 500, 70, 30, 25, 200)
	cur.Retrain.Submitted = 9
	cur.Retrain.QueueDepth = 4
	cur.Retrain.ForegroundNs = 5e6
	cur.Epoch.ReadAttempts = 2000
	cur.Epoch.ReadRetries = 60
	cur.Search = []search.KernelStats{
		{Kernel: "binary", Searches: 300, Probes: 2400},
	}
	cur.Server.BatchP50 = 7

	d := ComputeDelta(prev, cur, 0.55)
	want := []struct {
		name string
		got  int64
		want int64
	}{
		{"gets", d.Gets, 600},
		{"puts", d.Puts, 300},
		{"deletes", d.Deletes, 20},
		{"scans", d.Scans, 20},
		{"batches", d.Batches, 20},
		{"getKeys", d.GetKeys, 760}, // 600 point gets + 160 batch keys
		{"writeOps", d.WriteOps, 320},
		{"retrainSubmitted", d.RetrainSubmitted, 6},
		{"retrainQueue", d.RetrainQueue, 4}, // gauge, not differenced
		{"retrainForegroundNs", d.RetrainForegroundNs, 4e6},
		{"coalesceP50", d.CoalesceBatchP50, 7}, // gauge, not differenced
		{"ops", d.Ops(), 960},
	}
	for _, w := range want {
		if w.got != w.want {
			t.Errorf("%s = %d, want %d", w.name, w.got, w.want)
		}
	}
	// 200 searches, 1600 probes in the window.
	if d.ProbesPerSearch != 8 {
		t.Errorf("ProbesPerSearch = %v, want 8", d.ProbesPerSearch)
	}
	// 1000 attempts, 50 retries in the window.
	if d.EpochRetryRate != 0.05 {
		t.Errorf("EpochRetryRate = %v, want 0.05", d.EpochRetryRate)
	}
	if d.SkewShare != 0.55 {
		t.Errorf("SkewShare = %v, want 0.55", d.SkewShare)
	}
}

func TestComputeDeltaZeroPrev(t *testing.T) {
	cur := snap(100, 0, 0, 0, 0, 0)
	d := ComputeDelta(telemetry.Snapshot{}, cur, 0)
	if d.Gets != 100 || d.Ops() != 100 {
		t.Fatalf("zero-prev delta: gets=%d ops=%d, want 100/100", d.Gets, d.Ops())
	}
	if d.ProbesPerSearch != 0 || d.EpochRetryRate != 0 {
		t.Fatalf("zero-prev rates should be 0, got probes=%v retries=%v",
			d.ProbesPerSearch, d.EpochRetryRate)
	}
}

// TestClassifyBoundaries walks every classification boundary of the
// default thresholds: MinOps 256, WriteFrac 0.5, ScanFrac 0.2,
// SkewShare 0.4, and the precedence order insert > scan > skew > read.
func TestClassifyBoundaries(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
		want Phase
	}{
		{"empty window", Delta{}, PhaseIdle},
		{"just under MinOps", Delta{Gets: 255}, PhaseIdle},
		{"at MinOps", Delta{Gets: 256}, PhaseRead},
		{"writes just under half", Delta{Gets: 501, WriteOps: 499, Puts: 499}, PhaseRead},
		{"writes at half", Delta{Gets: 500, WriteOps: 500, Puts: 500}, PhaseInsert},
		{"writes dominate", Delta{Gets: 10, WriteOps: 990, Puts: 990}, PhaseInsert},
		{"deletes count as writes", Delta{Gets: 100, WriteOps: 400, Deletes: 400}, PhaseInsert},
		{"scans just under", Delta{Gets: 801, Scans: 199}, PhaseRead},
		{"scans at boundary", Delta{Gets: 800, Scans: 200}, PhaseScan},
		{"skew just under", Delta{Gets: 1000, SkewShare: 0.399}, PhaseRead},
		{"skew at boundary", Delta{Gets: 1000, SkewShare: 0.4}, PhaseSkew},
		{"uniform reads", Delta{Gets: 1000}, PhaseRead},
		{"batches alone qualify", Delta{Batches: 300}, PhaseRead},
		// Precedence: a window can satisfy several boundaries at once;
		// writes win over scans, scans over skew.
		{"insert beats scan", Delta{WriteOps: 500, Puts: 500, Scans: 500}, PhaseInsert},
		{"insert beats skew", Delta{Gets: 500, WriteOps: 500, Puts: 500, SkewShare: 0.9}, PhaseInsert},
		{"scan beats skew", Delta{Gets: 700, Scans: 300, SkewShare: 0.9}, PhaseScan},
		{"idle beats everything", Delta{Gets: 100, SkewShare: 0.9}, PhaseIdle},
	}
	for _, c := range cases {
		if got := c.d.Classify(Thresholds{}); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyCustomThresholds(t *testing.T) {
	th := Thresholds{MinOps: 10, WriteFrac: 0.9, ScanFrac: 0.5, SkewShare: 0.2, SkewTopK: 4}
	if got := (Delta{Gets: 20, WriteOps: 16, Puts: 16}).Classify(th); got != PhaseRead {
		t.Errorf("80%% writes under 0.9 threshold = %v, want read", got)
	}
	if got := (Delta{Gets: 20, SkewShare: 0.25}).Classify(th); got != PhaseSkew {
		t.Errorf("0.25 skew over 0.2 threshold = %v, want skew", got)
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseIdle: "idle", PhaseRead: "read", PhaseInsert: "insert",
		PhaseScan: "scan", PhaseSkew: "skew", Phase(99): "idle",
	} {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}
