// Package learnedpieces reproduces "Cutting Learned Index into Pieces:
// An In-depth Inquiry into Updatable Learned Indexes" (ICDE 2023) in pure
// Go: six learned indexes (RMI, RadixSpline, FITing-tree, PGM-Index,
// ALEX, XIndex), traditional baselines, a Viper-style NVM key-value store
// as the fair end-to-end environment, and the paper's four-dimension
// decomposition of updatable learned indexes as a composable API
// (internal/core).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package learnedpieces
