package pmem

import (
	"testing"
	"time"
)

func TestAllocAndRW(t *testing.T) {
	r := NewRegion(4096, None())
	off1, err := r.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := r.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off2 < off1+100 {
		t.Fatalf("overlapping allocations: %d, %d", off1, off2)
	}
	payload := []byte("hello pmem")
	r.Write(off1, payload)
	buf := make([]byte, len(payload))
	r.Read(off1, buf)
	if string(buf) != string(payload) {
		t.Fatalf("read back %q", buf)
	}
	if string(r.ReadNoCopy(off1, len(payload))) != string(payload) {
		t.Fatal("ReadNoCopy mismatch")
	}
}

func TestOutOfSpace(t *testing.T) {
	r := NewRegion(128, None())
	if _, err := r.Alloc(100); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Alloc(100); err != ErrOutOfSpace {
		t.Fatalf("got %v, want ErrOutOfSpace", err)
	}
}

func TestStatsCount(t *testing.T) {
	r := NewRegion(1024, None())
	r.Write(0, []byte{1})
	r.Read(0, make([]byte, 1))
	r.Flush(0, 1)
	reads, writes, flushes := r.Stats()
	if reads != 1 || writes != 1 || flushes != 1 {
		t.Fatalf("stats %d/%d/%d", reads, writes, flushes)
	}
}

func TestLatencyInjection(t *testing.T) {
	r := NewRegion(1<<16, LatencyModel{ReadNs: 2000, WriteNs: 0})
	buf := make([]byte, 64)
	start := time.Now()
	for i := 0; i < 100; i++ {
		// Alternate blocks so the block buffer never hits.
		r.Read(int64(i%2)*4096, buf)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Microsecond {
		t.Fatalf("latency not injected: 100 reads took %v, want >= 200us nominal", elapsed)
	}
}

func TestBlockBufferHitIsFree(t *testing.T) {
	r := NewRegion(1<<16, LatencyModel{ReadNs: 50_000, WriteNs: 0})
	buf := make([]byte, 8)
	r.Read(0, buf) // charge once
	start := time.Now()
	for i := 0; i < 100; i++ {
		r.Read(int64(i*8%blockSize), buf) // same block every time
	}
	if elapsed := time.Since(start); elapsed > 2*time.Millisecond {
		t.Fatalf("block-buffer hits were charged: 100 same-block reads took %v", elapsed)
	}
	// Crossing to another block charges again.
	start = time.Now()
	r.Read(blockSize*8, buf)
	if elapsed := time.Since(start); elapsed < 40*time.Microsecond {
		t.Fatalf("block miss not charged: took %v", elapsed)
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := NewRegion(1024, None())
	r.Write(10, []byte("persisted"))
	snap := r.Snapshot()
	r.Write(10, []byte("scribbled"))
	r.Restore(snap)
	if got := string(r.ReadNoCopy(10, 9)); got != "persisted" {
		t.Fatalf("after restore: %q", got)
	}
}

func TestBlocksRounding(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 1, 256: 1, 257: 2, 512: 2, 513: 3}
	for n, want := range cases {
		if got := blocks(n); got != want {
			t.Errorf("blocks(%d) = %d, want %d", n, got, want)
		}
	}
}
