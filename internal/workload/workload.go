// Package workload generates YCSB-style operation streams: the core
// workloads A/B/C/D/F the paper's Fig 15 uses, plus the read-only and
// write-only streams of Figs 10-14. Request keys follow either a uniform
// or a Zipfian distribution over the loaded keys (the paper uses normal
// key sets with Zipfian requests in §III-C/D).
package workload

import (
	"math/rand"
)

// OpKind is the type of one operation.
type OpKind uint8

const (
	// OpRead looks up an existing key.
	OpRead OpKind = iota
	// OpUpdate overwrites the value of an existing key.
	OpUpdate
	// OpInsert adds a previously absent key.
	OpInsert
	// OpRMW reads then updates an existing key (YCSB-F).
	OpRMW
	// OpScan reads a short ascending range.
	OpScan
)

// String returns the YCSB name of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpRMW:
		return "rmw"
	case OpScan:
		return "scan"
	}
	return "unknown"
}

// Op is one operation in a stream.
type Op struct {
	Kind OpKind
	Key  uint64
	// ScanLen is the entry count for OpScan.
	ScanLen int
}

// Mix describes a YCSB workload as operation proportions (they must sum
// to 1; Insert ops consume keys from the insert set).
type Mix struct {
	Name    string
	Read    float64
	Update  float64
	Insert  float64
	RMW     float64
	Scan    float64
	Zipfian bool // request distribution over loaded keys
	// Latest skews reads toward recently inserted keys (YCSB-D).
	Latest bool
}

// The paper's workloads (§III-A3, Fig 15).
var (
	// YCSBA is update-mostly: 50% reads, 50% updates, Zipfian.
	YCSBA = Mix{Name: "ycsb-a", Read: 0.5, Update: 0.5, Zipfian: true}
	// YCSBB is read-mostly: 95% reads, 5% updates, Zipfian.
	YCSBB = Mix{Name: "ycsb-b", Read: 0.95, Update: 0.05, Zipfian: true}
	// YCSBC is read-only.
	YCSBC = Mix{Name: "ycsb-c", Read: 1, Zipfian: true}
	// YCSBD is read-latest with inserts: 95% reads of recent keys, 5%
	// inserts of new keys — the mix that stresses insertion+retraining.
	YCSBD = Mix{Name: "ycsb-d", Read: 0.95, Insert: 0.05, Latest: true}
	// YCSBF is read-modify-write: 50% reads, 50% RMW, Zipfian.
	YCSBF = Mix{Name: "ycsb-f", Read: 0.5, RMW: 0.5, Zipfian: true}
	// ReadOnly drives Figs 10-12 (uniform requests).
	ReadOnly = Mix{Name: "read-only", Read: 1}
	// WriteOnly drives Figs 13-14.
	WriteOnly = Mix{Name: "write-only", Insert: 1}
)

// Mixes lists the read-write-mixed workloads of Fig 15.
func Mixes() []Mix { return []Mix{YCSBA, YCSBB, YCSBD, YCSBF} }

// Generator produces a deterministic operation stream for one run.
type Generator struct {
	mix     Mix
	loaded  []uint64 // keys present in the index (sorted)
	inserts []uint64 // keys to insert, consumed in order
	rng     *rand.Rand
	zipf    *rand.Zipf
	nextIns int
	// recent tracks inserted keys for Latest mixes.
	recent []uint64
}

// NewGenerator builds a generator over the loaded key set. inserts may be
// nil for read/update-only mixes.
func NewGenerator(mix Mix, loaded, inserts []uint64, seed int64) *Generator {
	g := &Generator{
		mix:     mix,
		loaded:  loaded,
		inserts: inserts,
		rng:     rand.New(rand.NewSource(seed)),
	}
	if mix.Zipfian && len(loaded) > 0 {
		// YCSB's scrambled Zipfian with theta 0.99.
		g.zipf = rand.NewZipf(g.rng, 1.01, 1, uint64(len(loaded)-1))
	}
	return g
}

// Remaining reports how many insert keys are left.
func (g *Generator) Remaining() int { return len(g.inserts) - g.nextIns }

// pickExisting selects a loaded key per the request distribution.
func (g *Generator) pickExisting() uint64 {
	if g.mix.Latest && len(g.recent) > 0 && g.rng.Float64() < 0.8 {
		// Read-latest: bias toward the most recent inserts.
		w := len(g.recent)
		if w > 64 {
			w = 64
		}
		return g.recent[len(g.recent)-1-g.rng.Intn(w)]
	}
	if len(g.loaded) == 0 {
		return 0
	}
	if g.zipf != nil {
		// Scramble the rank so hot keys are spread over the key space.
		rank := g.zipf.Uint64()
		idx := (rank * 0x9E3779B97F4A7C15) % uint64(len(g.loaded))
		return g.loaded[idx]
	}
	return g.loaded[g.rng.Intn(len(g.loaded))]
}

// Next returns the next operation and reports false when the stream is
// exhausted (only Insert-consuming mixes exhaust).
func (g *Generator) Next() (Op, bool) {
	r := g.rng.Float64()
	m := g.mix
	switch {
	case r < m.Read:
		return Op{Kind: OpRead, Key: g.pickExisting()}, true
	case r < m.Read+m.Update:
		return Op{Kind: OpUpdate, Key: g.pickExisting()}, true
	case r < m.Read+m.Update+m.Insert:
		if g.nextIns >= len(g.inserts) {
			// Out of fresh keys: degrade to update, stream stays alive.
			return Op{Kind: OpUpdate, Key: g.pickExisting()}, true
		}
		k := g.inserts[g.nextIns]
		g.nextIns++
		if m.Latest {
			g.recent = append(g.recent, k)
		}
		return Op{Kind: OpInsert, Key: k}, true
	case r < m.Read+m.Update+m.Insert+m.RMW:
		return Op{Kind: OpRMW, Key: g.pickExisting()}, true
	default:
		return Op{Kind: OpScan, Key: g.pickExisting(), ScanLen: 1 + g.rng.Intn(100)}, true
	}
}

// Ops materialises n operations (convenient for benchmarks that want to
// exclude generation cost from the measured loop).
func (g *Generator) Ops(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i], _ = g.Next()
	}
	return ops
}

// InsertStream returns a pure insertion stream over the given keys in a
// deterministic shuffled order — the write-only workload.
func InsertStream(keys []uint64, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, len(keys))
	perm := rng.Perm(len(keys))
	for i, p := range perm {
		ops[i] = Op{Kind: OpInsert, Key: keys[p]}
	}
	return ops
}

// ReadStream returns a pure lookup stream of n requests over the loaded
// keys (uniform), the read-only workload.
func ReadStream(loaded []uint64, n int, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpRead, Key: loaded[rng.Intn(len(loaded))]}
	}
	return ops
}
