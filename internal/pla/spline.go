package pla

// GreedySpline implements the one-pass spline corridor used by
// RadixSpline: it selects a subset of the data points ("spline points")
// such that linear interpolation between consecutive spline points is
// within eps of every data point's true position.

// SplinePoint is a knot of the spline: an actual data key and its
// position in the sorted array.
type SplinePoint struct {
	Key uint64
	Pos int
}

// BuildGreedySpline returns the spline knots for keys with the given
// error bound. The first and last keys are always knots.
func BuildGreedySpline(keys []uint64, eps int) []SplinePoint {
	if len(keys) == 0 {
		return nil
	}
	if eps < 0 {
		eps = 0
	}
	fe := float64(eps)
	pts := []SplinePoint{{keys[0], 0}}
	if len(keys) == 1 {
		return pts
	}
	base := pts[0]
	var lo, hi float64
	haveCorridor := false
	for i := 1; i < len(keys); i++ {
		dx := float64(keys[i] - base.Key)
		dy := float64(i - base.Pos)
		pLo := (dy - fe) / dx
		pHi := (dy + fe) / dx
		if !haveCorridor {
			lo, hi = pLo, pHi
			haveCorridor = true
			continue
		}
		// The candidate knot must itself lie inside the corridor: only then
		// does the straight segment base->candidate stay within eps of every
		// intermediate point.
		s := dy / dx
		if s < lo || s > hi {
			// The previous point becomes a knot; restart the corridor from it.
			base = SplinePoint{keys[i-1], i - 1}
			pts = append(pts, base)
			dx = float64(keys[i] - base.Key)
			dy = float64(i - base.Pos)
			lo = (dy - fe) / dx
			hi = (dy + fe) / dx
			continue
		}
		if pLo > lo {
			lo = pLo
		}
		if pHi < hi {
			hi = pHi
		}
	}
	last := SplinePoint{keys[len(keys)-1], len(keys) - 1}
	if pts[len(pts)-1].Key != last.Key {
		pts = append(pts, last)
	}
	return pts
}

// InterpolateSpline predicts the position of key from the two knots
// surrounding it. idx must satisfy pts[idx].Key <= key <= pts[idx+1].Key
// (idx == len(pts)-1 is allowed for the final key).
func InterpolateSpline(pts []SplinePoint, idx int, key uint64) int {
	if idx >= len(pts)-1 {
		return pts[len(pts)-1].Pos
	}
	a, b := pts[idx], pts[idx+1]
	if b.Key == a.Key {
		return a.Pos
	}
	frac := float64(key-a.Key) / float64(b.Key-a.Key)
	return a.Pos + int(frac*float64(b.Pos-a.Pos))
}
