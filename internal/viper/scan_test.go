package viper

import (
	"bytes"
	"fmt"
	"testing"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/dataset"
	"learnedpieces/internal/learned/alex"
	"learnedpieces/internal/learned/pgm"
	"learnedpieces/internal/pmem"
	"learnedpieces/internal/telemetry"
)

// TestScanLimitIgnoresTombstones is the limit-semantics regression
// test: the caller's n counts *delivered live* entries, so index
// entries that resolve to tombstone records — the lingering shape a
// raced delete can leave behind — must be skipped without consuming
// the limit. The tombstone-pointing entries are constructed white-box
// (append a delete marker, then point an index entry at it), which is
// exactly the state the scan's defensive skip guards against.
func TestScanLimitIgnoresTombstones(t *testing.T) {
	for _, batch := range []int{1, 7, 0} { // legacy, multi-round, default
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			s := newStore(btree.New())
			s.SetScanBatch(batch)
			for k := uint64(0); k < 100; k += 2 {
				if err := s.Put(k, value(k)); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k < 100; k += 2 {
				off, err := s.appendRecord(k, nil, flagDeleted)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Index().Insert(k, uint64(off)); err != nil {
					t.Fatal(err)
				}
			}
			var got []uint64
			err := s.Scan(0, 25, func(k uint64, v []byte) bool {
				if !bytes.Equal(v, value(k)) {
					t.Fatalf("value mismatch at %d", k)
				}
				got = append(got, k)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 25 {
				t.Fatalf("delivered %d entries, want 25 (tombstones consumed the limit)", len(got))
			}
			for i, k := range got {
				if k != uint64(2*i) {
					t.Fatalf("entry %d = %d, want %d", i, k, 2*i)
				}
			}
		})
	}
}

// TestScanLimitWithInterleavedDeletes checks the public-path limit
// semantics: deletes interleaved with scans never shrink what a
// limited scan delivers as long as enough live keys remain.
func TestScanLimitWithInterleavedDeletes(t *testing.T) {
	s := newStore(btree.New())
	keys := dataset.Generate(dataset.Sequential, 1000, 0)
	for _, k := range keys {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		// Delete a stripe, then scan with a limit spanning it.
		for i := round * 100; i < round*100+50; i++ {
			if _, err := s.Delete(keys[i]); err != nil {
				t.Fatal(err)
			}
		}
		var got []uint64
		err := s.Scan(0, 200, func(k uint64, _ []byte) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 200 {
			t.Fatalf("round %d: delivered %d entries, want 200", round, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("round %d: out of order at %d", round, i)
			}
		}
		for _, k := range got {
			if _, ok := s.Get(k); !ok {
				t.Fatalf("round %d: scan delivered dead key %d", round, k)
			}
		}
	}
}

// TestRangeBatchedMatchesLegacy runs the same scans through the
// batched cursor path and the per-entry legacy path and requires
// identical results, on indexes with different cursor shapes.
func TestRangeBatchedMatchesLegacy(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Store
	}{
		{"btree", func() *Store { return newStore(btree.New()) }},
		{"pgm", func() *Store { return newStore(pgm.New(pgm.DefaultConfig())) }},
		{"alex", func() *Store { return newStore(alex.New(alex.DefaultConfig())) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk()
			keys := dataset.Generate(dataset.YCSBUniform, 4000, 7)
			for _, k := range keys {
				if err := s.Put(k, value(k)); err != nil {
					t.Fatal(err)
				}
			}
			// Updates and deletes so the delta layers are populated and
			// offsets are out of key order.
			for i := 0; i < len(keys); i += 3 {
				if err := s.Put(keys[i], value(keys[i]+1)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < len(keys); i += 5 {
				if _, err := s.Delete(keys[i]); err != nil {
					t.Fatal(err)
				}
			}
			collect := func(batch int, start uint64, n int) []uint64 {
				s.SetScanBatch(batch)
				var got []uint64
				if err := s.Scan(start, n, func(k uint64, v []byte) bool {
					if len(v) == 0 {
						t.Fatalf("empty value at %d", k)
					}
					got = append(got, k)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return got
			}
			for _, win := range []struct {
				start uint64
				n     int
			}{{0, 0}, {0, 100}, {keys[len(keys)/2], 250}, {^uint64(0), 10}} {
				legacy := collect(1, win.start, win.n)
				batched := collect(64, win.start, win.n)
				if len(legacy) != len(batched) {
					t.Fatalf("start=%d n=%d: legacy %d entries, batched %d",
						win.start, win.n, len(legacy), len(batched))
				}
				for i := range legacy {
					if legacy[i] != batched[i] {
						t.Fatalf("start=%d n=%d: entry %d differs: %d vs %d",
							win.start, win.n, i, legacy[i], batched[i])
					}
				}
			}
		})
	}
}

// TestRangeReseeksAcrossCompact drives a Compact from inside a scan
// callback: at the next pin-yield the batched path must notice the
// displaced view, reopen the cursor at the resume key against the new
// index, and still deliver every key exactly once in order.
func TestRangeReseeksAcrossCompact(t *testing.T) {
	sink := telemetry.New()
	s := Open(pmem.NewRegion(64<<20, pmem.None()), btree.New(), WithTelemetry(sink))
	s.SetScanBatch(16)
	keys := dataset.Generate(dataset.Sequential, 2000, 0)
	for _, k := range keys {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	compacted := false
	var got []uint64
	err := s.Scan(0, 0, func(k uint64, v []byte) bool {
		if !bytes.Equal(v, value(k)) {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		if !compacted && len(got) == 100 {
			compacted = true
			if _, err := s.Compact(btree.New()); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("delivered %d entries, want %d", len(got), len(keys))
	}
	for i, k := range got {
		if k != keys[i] {
			t.Fatalf("entry %d = %d, want %d", i, k, keys[i])
		}
	}
	if n := s.met.ScanReseeks.Load(); n < 1 {
		t.Fatalf("ScanReseeks = %d, want >= 1", n)
	}
	if n := s.met.ScanPinYields.Load(); n < 1 {
		t.Fatalf("ScanPinYields = %d, want >= 1", n)
	}
}
