package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"learnedpieces/internal/core"
	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
	"learnedpieces/internal/learned/apex"
	"learnedpieces/internal/pmem"
	"learnedpieces/internal/stats"
	"learnedpieces/internal/workload"
)

// RunScan reproduces the paper's appendix range-query evaluation: short
// ascending scans (the operation that separates sorted indexes from the
// CCEH hash baseline) across the ordered indexes.
func RunScan(cfg Config) error {
	keys := dataset.Generate(dataset.YCSBNormal, cfg.N, cfg.Seed)
	t := stats.NewTable(fmt.Sprintf("Appendix: range scans (n=%d)", cfg.N),
		"index", "scan len", "Mops/s(entries)", "p99.9(us)")
	names := []string{"rmi", "rs", "fiting-buf", "pgm", "alex", "xindex", "lipp", "btree", "skiplist", "art"}
	for _, scanLen := range []int{10, 100} {
		for _, name := range names {
			s, err := cfg.buildStore(mustEntry(name).New(), keys)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			rng := rand.New(rand.NewSource(cfg.Seed + 5))
			h := stats.NewHistogram()
			entries := 0
			nScans := cfg.Ops / scanLen
			if nScans < 1 {
				nScans = 1
			}
			runtime.GC()
			start := time.Now()
			for i := 0; i < nScans; i++ {
				from := keys[rng.Intn(len(keys))]
				t0 := time.Now()
				err := s.Scan(from, scanLen, func(k uint64, v []byte) bool {
					entries++
					return true
				})
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				h.RecordSince(t0)
			}
			elapsed := time.Since(start)
			t.AddRow(name, scanLen, float64(entries)/elapsed.Seconds()/1e6, usec(h.Percentile(99.9)))
			_ = s.Close()
		}
	}
	cfg.render(t)
	return nil
}

// RunExtLIPP evaluates the LIPP-style index the paper could not (§V-B1:
// closed source at the time) against the best stock designs, end to end:
// read-only and write-only throughput, depth and footprint.
func RunExtLIPP(cfg Config) error {
	names := []string{"alex", "pgm", "xindex", "lipp", "finedex", "btree"}
	keys := dataset.Generate(dataset.YCSBNormal, cfg.N, cfg.Seed)
	t := stats.NewTable(fmt.Sprintf("Extension: LIPP vs stock designs, YCSB (n=%d)", cfg.N),
		"index", "read Mops/s", "read p99.9(us)", "insert Mops/s", "depth", "index size")
	load, inserts := dataset.Split(keys, cfg.N/4)
	for _, name := range names {
		// Read phase over the full key set.
		s, err := cfg.buildStore(mustEntry(name).New(), keys)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		readSum := cfg.runReads(s, workload.ReadStream(keys, cfg.Ops, cfg.Seed+1))
		// Write phase into a store loaded with the prefix.
		s2, err := cfg.buildStore(mustEntry(name).New(), load)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		v := cfg.value()
		runtime.GC()
		start := time.Now()
		for _, k := range dataset.Shuffled(inserts, cfg.Seed+2) {
			if err := s2.Put(k, v); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		insMops := float64(len(inserts)) / time.Since(start).Seconds() / 1e6
		depth, _ := index.DepthOf(s.Index())
		var structure int64
		if sz, ok := index.SizesOf(s.Index()); ok {
			structure = sz.Structure
		}
		t.AddRow(name, mops(readSum), usec(readSum.P999Ns), insMops,
			fmt.Sprintf("%.2f", depth), human(structure))
		_ = s.Close()
		_ = s2.Close()
	}
	cfg.render(t)
	return nil
}

// RunExtAPEX evaluates the APEX-style persistent learned index against
// the paper's Viper+ALEX arrangement on the same simulated PMem: the
// volatile-index design must rebuild by scanning every record after a
// crash (Fig 16), while APEX recovers from node headers alone. Both pay
// the same per-access NVM latency during reads/writes.
func RunExtAPEX(cfg Config) error {
	t := stats.NewTable("Extension: APEX (persistent index) vs Viper+ALEX (volatile index)",
		"design", "size", "get Mops/s", "insert Mops/s", "recovery")
	for _, size := range cfg.Sizes {
		keys := dataset.Generate(dataset.YCSBNormal, size, cfg.Seed)
		load, inserts := dataset.Split(keys, size/4)
		order := dataset.Shuffled(inserts, cfg.Seed+2)
		probes := workload.ReadStream(load, cfg.Ops, cfg.Seed+1)

		// Viper + volatile ALEX.
		s, err := cfg.buildStore(mustEntry("alex").New(), load)
		if err != nil {
			return err
		}
		getSum := cfg.runReads(s, probes)
		v := cfg.value()
		runtime.GC()
		start := time.Now()
		for _, k := range order {
			if err := s.Put(k, v); err != nil {
				return err
			}
		}
		insMops := float64(len(order)) / time.Since(start).Seconds() / 1e6
		s.DropIndex(mustEntry("btree").New())
		start = time.Now()
		if err := s.Recover(mustEntry("alex").New()); err != nil {
			return err
		}
		t.AddRow("viper+alex", size, mops(getSum), insMops, time.Since(start))
		_ = s.Close()

		// APEX on its own region.
		region := pmem.NewRegion(int(int64(size)*64+(64<<20)), cfg.latency())
		ax, err := apex.Create(region, apex.Config{LogCap: size})
		if err != nil {
			return err
		}
		if err := ax.BulkLoad(load, load); err != nil {
			return err
		}
		runtime.GC()
		start = time.Now()
		for _, op := range probes {
			if _, ok := ax.Get(op.Key); !ok {
				return fmt.Errorf("apex: key %d missing", op.Key)
			}
		}
		getMops := float64(len(probes)) / time.Since(start).Seconds() / 1e6
		start = time.Now()
		for _, k := range order {
			if err := ax.Insert(k, k); err != nil {
				return err
			}
		}
		axInsMops := float64(len(order)) / time.Since(start).Seconds() / 1e6
		start = time.Now()
		if _, err := apex.Recover(region); err != nil {
			return err
		}
		t.AddRow("apex", size, getMops, axInsMops, time.Since(start))
	}
	cfg.render(t)
	return nil
}

// RunCross answers the question §IV-C leaves open ("we do not know
// whether RMI will perform better than ATS after changing the
// approximation algorithm. This issue deserves to be further explored"):
// the full structure x approximation-algorithm cross, every combination
// measured as a working composed index on the same keys and probes.
func RunCross(cfg Config) error {
	keys := dataset.Generate(dataset.YCSBNormal, cfg.N, cfg.Seed)
	probes := workload.ReadStream(keys, cfg.Ops/2, cfg.Seed+1)
	structures := map[string]func() core.Structure{
		"btree": func() core.Structure { return core.NewBTreeTop() },
		"lrs":   func() core.Structure { return core.NewLRS(8) },
		"rmi":   func() core.Structure { return core.NewRMITop(0) },
		"ats":   func() core.Structure { return core.NewATS(16, 64) },
	}
	approxes := map[string]core.Approximator{
		"lsa":     core.LSA{SegLen: 256},
		"opt-pla": core.OptPLA{Eps: 32},
		"greedy":  core.Greedy{Eps: 32},
		"lsa-gap": core.LSAGap{SegLen: 256},
	}
	t := stats.NewTable(fmt.Sprintf("Extension: structure x algorithm cross (get ns/op, n=%d)", cfg.N),
		"structure", "lsa", "opt-pla", "greedy", "lsa-gap")
	for _, sName := range []string{"btree", "lrs", "rmi", "ats"} {
		row := []interface{}{sName}
		for _, aName := range []string{"lsa", "opt-pla", "greedy", "lsa-gap"} {
			c := core.Compose(approxes[aName], structures[sName](), core.BufferInsert{}, core.RetrainNode{})
			if err := c.BulkLoad(keys, keys); err != nil {
				return err
			}
			runtime.GC()
			start := time.Now()
			for _, op := range probes {
				if _, ok := c.Get(op.Key); !ok {
					return fmt.Errorf("%s+%s: key missing", sName, aName)
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(len(probes))
			row = append(row, fmt.Sprintf("%.0f", ns))
		}
		t.AddRow(row...)
	}
	cfg.render(t)
	return nil
}
