// Package atomic exercises the atomic-discipline analyzer: a field that
// is ever passed to sync/atomic must have no plain access sites, and
// cache-line padded structs must keep their layout.
package atomic

import "sync/atomic"

type counters struct {
	hits int64
	cold int64
}

// Bump is the sanctioned atomic site for hits.
func Bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// Peek mixes a plain load into the atomically-written field.
func Peek(c *counters) int64 {
	return c.hits // want "plain access to hits"
}

// Cold never feeds sync/atomic, so plain access stays legal.
func Cold(c *counters) int64 {
	c.cold++
	return c.cold
}

// badPad's pad leaves the next field mid cache line.
type badPad struct { // want "pad before field next ends at offset 16"
	v    int64
	_    [8]byte
	next int64
}

// goodPad rounds the struct to a full cache line.
type goodPad struct {
	v int64
	_ [56]byte
}

var _ = badPad{}
var _ = goodPad{}
