// Package stats provides the measurement plumbing for the benchmark
// harness: an HDR-style latency histogram with cheap lock-free recording,
// throughput meters and a plain-text table renderer for result rows.
package stats

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// subBucketBits controls histogram resolution: each power-of-two range is
// split into 2^subBucketBits linear sub-buckets (~1.5% relative error).
const subBucketBits = 6

const numBuckets = 64 * (1 << subBucketBits)

// Histogram records int64 values (typically latencies in nanoseconds) into
// logarithmic buckets. Recording is atomic, so one Histogram may be shared
// by concurrent workers; reading while writers are active yields a
// consistent-enough snapshot for reporting.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < (1 << subBucketBits) {
		return int(u)
	}
	exp := 63 - bits.LeadingZeros64(u)
	shift := exp - subBucketBits
	sub := int((u >> uint(shift)) & ((1 << subBucketBits) - 1))
	return (exp-subBucketBits+1)<<subBucketBits + sub
}

func bucketValue(idx int) int64 {
	if idx < (1 << subBucketBits) {
		return int64(idx)
	}
	blk := idx >> subBucketBits
	sub := idx & ((1 << subBucketBits) - 1)
	exp := blk + subBucketBits - 1
	base := uint64(1) << uint(exp)
	step := base >> subBucketBits
	return int64(base + uint64(sub)*step + step/2)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(time.Since(start).Nanoseconds())
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the arithmetic mean of the recorded values.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns the value at percentile p in [0,100].
func (h *Histogram) Percentile(p float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				return m
			}
			return v
		}
	}
	return h.max.Load()
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur := h.max.Load()
		o := other.max.Load()
		if o <= cur || h.max.CompareAndSwap(cur, o) {
			break
		}
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Summary is a compact, printable digest of a measurement run.
type Summary struct {
	Name                string
	Ops                 int64
	Elapsed             time.Duration
	MeanNs              float64
	P50Ns               int64
	P99Ns               int64
	P999Ns              int64
	MaxNs               int64
	ThroughputOpsPerSec float64
}

// Summarize computes a Summary from a histogram and a wall-clock duration.
func Summarize(name string, h *Histogram, elapsed time.Duration) Summary {
	s := Summary{
		Name:    name,
		Ops:     h.Count(),
		Elapsed: elapsed,
		MeanNs:  h.Mean(),
		P50Ns:   h.Percentile(50),
		P99Ns:   h.Percentile(99),
		P999Ns:  h.Percentile(99.9),
		MaxNs:   h.Max(),
	}
	if elapsed > 0 {
		s.ThroughputOpsPerSec = float64(s.Ops) / elapsed.Seconds()
	}
	return s
}

// String renders the summary on one line, in the units the paper plots
// (Mops/s throughput, µs tail latency).
func (s Summary) String() string {
	return fmt.Sprintf("%-22s %10.3f Mops/s  mean %8.0fns  p50 %7dns  p99 %8dns  p99.9 %8dns  max %9dns",
		s.Name, s.ThroughputOpsPerSec/1e6, s.MeanNs, s.P50Ns, s.P99Ns, s.P999Ns, s.MaxNs)
}

// Table accumulates rows of labelled values and renders them aligned. The
// bench harness uses it to print each figure/table in the paper's layout.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, hdr := range t.Headers {
		widths[i] = len(hdr)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (header row first) for
// machine-readable post-processing and plotting.
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			_, _ = io.WriteString(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			_, _ = io.WriteString(w, `"`+strings.ReplaceAll(c, `"`, `""`)+`"`)
		} else {
			_, _ = io.WriteString(w, c)
		}
	}
	_, _ = io.WriteString(w, "\n")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Quantiles returns the requested quantiles (0..1) of a float64 sample.
// Used by tests and small analyses where a histogram is overkill.
func Quantiles(sample []float64, qs ...float64) []float64 {
	if len(sample) == 0 {
		return make([]float64, len(qs))
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}
