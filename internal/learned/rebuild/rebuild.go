// Package rebuild makes the rebuild-only learned indexes (RMI,
// RadixSpline) updatable: a sorted delta buffer with tombstones absorbs
// writes in front of the bulk-loaded inner index, and a full buffer
// triggers a complete rebuild — the "retrain the whole index" strategy
// the paper attributes to these structures (§II-B: no insertion or
// retraining strategy of their own, so updates mean rebuilding). With a
// retrain pool attached the rebuild runs in the background against a
// snapshot while a fresh buffer keeps absorbing writes, taking the
// O(n) rebuild off the Put tail.
package rebuild

import (
	"sort"
	"sync/atomic"
	"time"

	"learnedpieces/internal/epoch"
	"learnedpieces/internal/index"
	"learnedpieces/internal/retrain"
	"learnedpieces/internal/search"
)

// Inner is the contract the wrapped index must satisfy: point lookups
// plus bulk loading. Batch lookups are used when the inner index also
// implements index.BatchGetter.
type Inner interface {
	index.Index
	index.Bulk
}

// Config controls the wrapper.
type Config struct {
	// Threshold is the delta-buffer size that triggers a full rebuild;
	// <= 0 picks 4096. Larger values amortize the O(n) rebuild over
	// more inserts at the cost of a longer linear buffer search.
	Threshold int
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config { return Config{Threshold: 4096} }

func (c *Config) normalize() {
	if c.Threshold <= 0 {
		c.Threshold = 4096
	}
}

// Index wraps a rebuild-only inner index with a delta buffer.
//
// The base key/value arrays passed to the inner index's BulkLoad are
// retained: a rebuild merges them with the frozen buffer into fresh
// arrays and bulk-loads a brand-new inner instance, so the live inner
// index and its arrays are never mutated — which is what lets the
// background rebuild share them with concurrent readers.
type Index struct {
	name     string
	cfg      Config
	newInner func() Inner
	inner    Inner

	// threshold is the live rebuild trigger. It starts at cfg.Threshold
	// and can be retuned at runtime (index.RetrainTuner) by the adapt
	// controller while the writer goroutine is mid-workload, so both
	// sides go through the atomic — the writer's read in bufUpsert and
	// the controller's SetRetrainThreshold store.
	threshold atomic.Int64

	baseK []uint64
	baseV []uint64

	bufK []uint64
	bufV []uint64
	bufD []bool

	length int
	dirty  bool

	// Background rebuilds (index.AsyncRetrainer): the full buffer is
	// frozen, the pool merges it with the base arrays and bulk-loads a
	// replacement inner aside; lookups read buf -> frozen -> inner. The
	// replacement is deposited in the inbox and installed on the writer
	// timeline (single-writer contract).
	pool       *retrain.Pool
	frozenK    []uint64
	frozenV    []uint64
	frozenD    []bool
	rebuilding bool
	gen        uint64 // bumped when a pending deposit becomes invalid (BulkLoad)
	inbox      retrain.Inbox[result]

	retrains  atomic.Int64
	retrainNs atomic.Int64
}

// result is one finished background rebuild, tagged with the generation
// it was built from.
type result struct {
	gen   uint64
	inner Inner
	baseK []uint64
	baseV []uint64
}

// New returns an empty wrapper; name is the registry name (the inner
// index is constructed on demand, so its own Name is not reused).
func New(name string, cfg Config, newInner func() Inner) *Index {
	cfg.normalize()
	ix := &Index{name: name, cfg: cfg, newInner: newInner, inner: newInner()}
	ix.threshold.Store(int64(cfg.Threshold))
	return ix
}

// SetRetrainThreshold implements index.RetrainTuner: it retunes the
// delta-buffer size that triggers a rebuild, effective from the next
// buffered write. n <= 0 restores the configured value. Safe to call
// concurrently with the writer.
func (ix *Index) SetRetrainThreshold(n int) {
	if n <= 0 {
		n = ix.cfg.Threshold
	}
	ix.threshold.Store(int64(n))
}

// RetrainThreshold reports the live rebuild trigger.
func (ix *Index) RetrainThreshold() int { return int(ix.threshold.Load()) }

// Name implements index.Index.
func (ix *Index) Name() string { return ix.name }

// ConcurrentReads reports that concurrent Gets are safe between writes.
func (ix *Index) ConcurrentReads() bool { return true }

// RetrainStats implements index.RetrainReporter: every full rebuild is
// one retraining action.
func (ix *Index) RetrainStats() (int64, int64) {
	return ix.retrains.Load(), ix.retrainNs.Load()
}

// SetRetrainPool implements index.AsyncRetrainer: subsequent full
// rebuilds run on the pool.
func (ix *Index) SetRetrainPool(p *retrain.Pool) { ix.pool = p }

// DrainRetrains implements index.AsyncRetrainer: wait for an in-flight
// rebuild and install it. Must run on the writer timeline.
func (ix *Index) DrainRetrains() {
	ix.pool.Drain()
	ix.install()
}

// install applies a deposited rebuild; stale deposits (the index was
// bulk-loaded after the snapshot) are dropped.
func (ix *Index) install() {
	for _, dep := range ix.inbox.TakeAll() {
		if dep.gen != ix.gen {
			continue
		}
		// Retire the displaced inner structure: a lock-free reader that
		// loaded it through a store view finishes traversing it before
		// the epoch manager lets it go.
		epoch.Retire(ix.inner)
		ix.inner = dep.inner
		ix.baseK, ix.baseV = dep.baseK, dep.baseV
		ix.frozenK, ix.frozenV, ix.frozenD = nil, nil, nil
		ix.rebuilding = false
	}
}

// BulkLoad loads the sorted keys into a fresh inner index.
func (ix *Index) BulkLoad(keys, values []uint64) error {
	ix.gen++ // a pending rebuild deposit no longer applies
	ix.frozenK, ix.frozenV, ix.frozenD = nil, nil, nil
	ix.rebuilding = false
	ix.bufK, ix.bufV, ix.bufD = nil, nil, nil
	ix.baseK, ix.baseV = keys, values
	ix.length = len(keys)
	ix.dirty = false
	ix.inner = ix.newInner()
	return ix.inner.BulkLoad(keys, values)
}

// Insert stores value under key, replacing any existing value.
func (ix *Index) Insert(key, value uint64) error {
	ix.install()
	ix.bufUpsert(key, value, false)
	return nil
}

// Delete inserts a tombstone and reports whether the key was live.
func (ix *Index) Delete(key uint64) bool {
	ix.install()
	if _, ok := ix.Get(key); !ok {
		return false
	}
	ix.bufUpsert(key, 0, true)
	return true
}

// bufUpsert writes (key,value,dead) into the sorted buffer, scheduling
// a rebuild when it reaches Threshold.
func (ix *Index) bufUpsert(key, value uint64, dead bool) {
	ix.dirty = true
	i, ok := search.Find(ix.bufK, key)
	if ok {
		ix.bufV[i] = value
		ix.bufD[i] = dead
		return
	}
	ix.bufK = append(ix.bufK, 0)
	ix.bufV = append(ix.bufV, 0)
	ix.bufD = append(ix.bufD, false)
	copy(ix.bufK[i+1:], ix.bufK[i:])
	copy(ix.bufV[i+1:], ix.bufV[i:])
	copy(ix.bufD[i+1:], ix.bufD[i:])
	ix.bufK[i] = key
	ix.bufV[i] = value
	ix.bufD[i] = dead
	if int64(len(ix.bufK)) >= ix.threshold.Load() {
		ix.scheduleRebuild()
	}
}

// scheduleRebuild routes the full rebuild to the pool when one is
// attached, and runs it inline otherwise. While a background rebuild is
// in flight the live buffer keeps absorbing writes (it grows past
// Threshold until the deposit installs) — the index never blocks.
func (ix *Index) scheduleRebuild() {
	if ix.pool == nil {
		start := time.Now()
		mk, mv := mergeBase(ix.baseK, ix.baseV, ix.bufK, ix.bufV, ix.bufD)
		ix.bufK, ix.bufV, ix.bufD = nil, nil, nil
		ix.baseK, ix.baseV = mk, mv
		ix.inner = ix.newInner()
		if err := ix.inner.BulkLoad(mk, mv); err != nil {
			panic("rebuild: merged base refused by inner: " + err.Error())
		}
		ix.retrains.Add(1)
		ix.retrainNs.Add(time.Since(start).Nanoseconds())
		return
	}
	if ix.rebuilding {
		return
	}
	ix.rebuilding = true
	ix.frozenK, ix.frozenV, ix.frozenD = ix.bufK, ix.bufV, ix.bufD
	ix.bufK, ix.bufV, ix.bufD = nil, nil, nil
	fk, fv, fd := ix.frozenK, ix.frozenV, ix.frozenD
	baseK, baseV := ix.baseK, ix.baseV
	gen := ix.gen
	newInner := ix.newInner
	ix.pool.Submit(ix, func() {
		start := time.Now()
		mk, mv := mergeBase(baseK, baseV, fk, fv, fd)
		in := newInner()
		if err := in.BulkLoad(mk, mv); err != nil {
			// mergeBase emits strictly increasing keys, which every Inner
			// accepts; a refusal means the merge invariant broke.
			panic("rebuild: merged base refused by inner: " + err.Error())
		}
		ix.retrains.Add(1)
		ix.retrainNs.Add(time.Since(start).Nanoseconds())
		ix.inbox.Put(result{gen: gen, inner: in, baseK: mk, baseV: mv})
	})
	ix.install() // in sync mode the deposit is already waiting
}

// mergeBase merges the sorted base arrays (no tombstones) with the
// sorted delta triple (newest wins; dead entries dropped — the base is
// the oldest layer, so nothing below can resurrect them).
func mergeBase(bk, bv []uint64, dk, dv []uint64, dd []bool) ([]uint64, []uint64) {
	mk := make([]uint64, 0, len(bk)+len(dk))
	mv := make([]uint64, 0, len(bk)+len(dk))
	i, j := 0, 0
	for i < len(bk) || j < len(dk) {
		switch {
		case j >= len(dk) || (i < len(bk) && bk[i] < dk[j]):
			mk = append(mk, bk[i])
			mv = append(mv, bv[i])
			i++
		case i >= len(bk) || dk[j] < bk[i]:
			if !dd[j] {
				mk = append(mk, dk[j])
				mv = append(mv, dv[j])
			}
			j++
		default: // equal: delta shadows base
			if !dd[j] {
				mk = append(mk, dk[j])
				mv = append(mv, dv[j])
			}
			i++
			j++
		}
	}
	return mk, mv
}

// Get returns the value stored under key (buffer, then the frozen
// buffer of an in-flight rebuild, then the inner index).
func (ix *Index) Get(key uint64) (uint64, bool) {
	if i, ok := search.Find(ix.bufK, key); ok {
		if ix.bufD[i] {
			return 0, false
		}
		return ix.bufV[i], true
	}
	if i, ok := search.Find(ix.frozenK, key); ok {
		if ix.frozenD[i] {
			return 0, false
		}
		return ix.frozenV[i], true
	}
	return ix.inner.Get(key)
}

// GetBatch implements index.BatchGetter with the same shadowing order
// as Get. Lanes not decided by the buffer layers resolve through the
// inner index's own batch path when it has one.
func (ix *Index) GetBatch(keys []uint64, vals []uint64, found []bool) {
	bg, batched := ix.inner.(index.BatchGetter)
	if !batched || (len(ix.bufK) == 0 && len(ix.frozenK) == 0) {
		if batched {
			bg.GetBatch(keys, vals, found)
			return
		}
		for i, key := range keys {
			vals[i], found[i] = ix.Get(key)
		}
		return
	}
	// Resolve the buffer layers per lane, then hand the undecided lanes
	// to the inner batch path in one compacted sub-batch.
	sub := make([]uint64, 0, len(keys))
	lane := make([]int, 0, len(keys))
	for i, key := range keys {
		vals[i], found[i] = 0, false
		if j, ok := search.Find(ix.bufK, key); ok {
			if !ix.bufD[j] {
				vals[i], found[i] = ix.bufV[j], true
			}
			continue
		}
		if j, ok := search.Find(ix.frozenK, key); ok {
			if !ix.frozenD[j] {
				vals[i], found[i] = ix.frozenV[j], true
			}
			continue
		}
		sub = append(sub, key)
		lane = append(lane, i)
	}
	if len(sub) == 0 {
		return
	}
	sv := make([]uint64, len(sub))
	sf := make([]bool, len(sub))
	bg.GetBatch(sub, sv, sf)
	for x, i := range lane {
		vals[i], found[i] = sv[x], sf[x]
	}
}

// Len returns the number of live entries (cached between mutations).
func (ix *Index) Len() int {
	if !ix.dirty {
		return ix.length
	}
	n := 0
	ix.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	ix.length = n
	ix.dirty = false
	return n
}

// Scan visits live entries with key >= start in order via a 3-way merge
// of buffer, frozen buffer and base arrays (newer layers shadow older).
func (ix *Index) Scan(start uint64, n int, fn func(key, value uint64) bool) {
	type layer struct {
		keys []uint64
		vals []uint64
		dead []bool
		pos  int
	}
	var cs []layer
	add := func(keys, vals []uint64, dead []bool) {
		if len(keys) == 0 {
			return
		}
		pos := sort.Search(len(keys), func(i int) bool { return keys[i] >= start })
		if pos < len(keys) {
			cs = append(cs, layer{keys, vals, dead, pos})
		}
	}
	add(ix.bufK, ix.bufV, ix.bufD)
	add(ix.frozenK, ix.frozenV, ix.frozenD)
	add(ix.baseK, ix.baseV, nil)
	count := 0
	for {
		best := -1
		var bk uint64
		for i := range cs {
			if cs[i].pos >= len(cs[i].keys) {
				continue
			}
			k := cs[i].keys[cs[i].pos]
			if best < 0 || k < bk {
				best, bk = i, k
			}
		}
		if best < 0 {
			return
		}
		c := &cs[best]
		dead := c.dead != nil && c.dead[c.pos]
		v := c.vals[c.pos]
		for i := range cs {
			for cs[i].pos < len(cs[i].keys) && cs[i].keys[cs[i].pos] == bk {
				cs[i].pos++
			}
		}
		if dead {
			continue
		}
		if n > 0 && count >= n {
			return
		}
		if !fn(bk, v) {
			return
		}
		count++
	}
}

// Range implements index.Ranger with a pooled merge cursor over the
// same three layers Scan walks (buffer, frozen buffer, base arrays,
// newest shadowing oldest). All three are flat sorted slices that stay
// immutable while the single-writer contract holds, so the shared
// merge cursor applies directly; positioning is one binary search per
// layer.
func (ix *Index) Range(start uint64) index.Cursor {
	layers := make([]index.MergeLayer, 0, 3)
	add := func(keys, vals []uint64, dead []bool) {
		pos := search.LowerBound(keys, start, 0, len(keys))
		if pos < len(keys) {
			layers = append(layers, index.MergeLayer{Keys: keys, Vals: vals, Dead: dead, Pos: pos})
		}
	}
	add(ix.bufK, ix.bufV, ix.bufD)
	add(ix.frozenK, ix.frozenV, ix.frozenD)
	add(ix.baseK, ix.baseV, nil)
	return index.NewMergeCursor(layers)
}

// AvgDepth delegates to the inner index when it reports one.
func (ix *Index) AvgDepth() float64 {
	if d, ok := index.DepthOf(ix.inner); ok {
		return d
	}
	return 1
}

// Sizes reports the inner footprint plus the buffer layers.
func (ix *Index) Sizes() index.Sizes {
	s, _ := index.SizesOf(ix.inner)
	s.Structure += int64(len(ix.bufD) + len(ix.frozenD))
	s.Keys += int64(len(ix.bufK)+len(ix.frozenK)) * 8
	s.Values += int64(len(ix.bufV)+len(ix.frozenV)) * 8
	return s
}
