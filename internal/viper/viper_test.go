package viper

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/dataset"
	"learnedpieces/internal/epoch"
	"learnedpieces/internal/index"
	"learnedpieces/internal/learned/alex"
	"learnedpieces/internal/learned/fitting"
	"learnedpieces/internal/learned/pgm"
	"learnedpieces/internal/learned/rmi"
	"learnedpieces/internal/learned/rs"
	"learnedpieces/internal/learned/xindex"
	"learnedpieces/internal/pmem"
	"learnedpieces/internal/sharded"
)

func value(i uint64) []byte {
	v := make([]byte, DefaultValueSize)
	copy(v, fmt.Sprintf("value-%d", i))
	return v
}

func newStore(idx index.Index) *Store {
	return Open(pmem.NewRegion(32<<20, pmem.None()), idx)
}

func TestPutGetDeleteWithBTree(t *testing.T) {
	s := newStore(btree.New())
	keys := dataset.Generate(dataset.YCSBUniform, 2000, 1)
	for _, k := range keys {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, k := range keys {
		v, ok := s.Get(k)
		if !ok || !bytes.Equal(v, value(k)) {
			t.Fatalf("get(%d) bad", k)
		}
	}
	// Update.
	if err := s.Put(keys[0], []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(keys[0]); string(v) != "updated" {
		t.Fatalf("update lost: %q", v)
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len changed on update: %d", s.Len())
	}
	// Delete.
	ok, err := s.Delete(keys[1])
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("deleted key visible")
	}
	if ok, _ := s.Delete(keys[1]); ok {
		t.Fatal("double delete")
	}
}

func TestScanReadsValues(t *testing.T) {
	s := newStore(btree.New())
	keys := dataset.Generate(dataset.Sequential, 500, 0)
	for _, k := range keys {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	var visited []uint64
	err := s.Scan(100, 50, func(k uint64, v []byte) bool {
		if !bytes.Equal(v, value(k)) {
			t.Fatalf("scan value mismatch at %d", k)
		}
		visited = append(visited, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 50 || visited[0] != 100 {
		t.Fatalf("scan window wrong: %d entries from %d", len(visited), visited[0])
	}
}

// TestRecoveryAllIndexes is the Fig 16 mechanism: crash (drop the DRAM
// index), then rebuild each index type from the PMem pages.
func TestRecoveryAllIndexes(t *testing.T) {
	fresh := map[string]func() index.Index{
		"btree":  func() index.Index { return btree.New() },
		"rmi":    func() index.Index { return rmi.New(rmi.DefaultConfig()) },
		"rs":     func() index.Index { return rs.New(rs.DefaultConfig()) },
		"pgm":    func() index.Index { return pgm.New(pgm.DefaultConfig()) },
		"alex":   func() index.Index { return alex.New(alex.DefaultConfig()) },
		"xindex": func() index.Index { return xindex.New(xindex.DefaultConfig()) },
		"fiting": func() index.Index { return fitting.New(fitting.DefaultConfig()) },
	}
	for name, f := range fresh {
		t.Run(name, func(t *testing.T) {
			s := newStore(btree.New())
			keys := dataset.Generate(dataset.YCSBNormal, 3000, 5)
			for _, k := range keys {
				if err := s.Put(k, value(k)); err != nil {
					t.Fatal(err)
				}
			}
			// Overwrite some, delete some: recovery must keep newest state.
			for _, k := range keys[:100] {
				if err := s.Put(k, []byte("v2")); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range keys[100:200] {
				if _, err := s.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			s.DropIndex(btree.New())
			if err := s.Recover(f()); err != nil {
				t.Fatal(err)
			}
			if s.Len() != len(keys)-100 {
				t.Fatalf("recovered Len = %d, want %d", s.Len(), len(keys)-100)
			}
			for _, k := range keys[:100] {
				if v, ok := s.Get(k); !ok || string(v) != "v2" {
					t.Fatalf("updated key %d: %q %v", k, v, ok)
				}
			}
			for _, k := range keys[100:200] {
				if _, ok := s.Get(k); ok {
					t.Fatalf("deleted key %d resurrected", k)
				}
			}
			for _, k := range keys[200:] {
				if v, ok := s.Get(k); !ok || !bytes.Equal(v, value(k)) {
					t.Fatalf("key %d wrong after recovery", k)
				}
			}
		})
	}
}

func TestBulkPut(t *testing.T) {
	s := newStore(rmi.New(rmi.DefaultConfig()))
	keys := dataset.Generate(dataset.OSMLike, 5000, 9)
	if err := s.BulkPut(keys, value(7)); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || !bytes.Equal(v, value(7)) {
			t.Fatalf("get(%d) after bulk", k)
		}
	}
	st, wk, wkv := s.Sizes()
	if !(st < wk && wk < wkv) {
		t.Fatalf("sizes not increasing: %d %d %d", st, wk, wkv)
	}
}

func TestConcurrentPutsWithShardedIndex(t *testing.T) {
	keys := dataset.Generate(dataset.YCSBUniform, 20000, 4)
	idx := sharded.New(func() index.Index { return btree.New() },
		sharded.BoundariesFromSample(keys, 16))
	s := newStore(idx)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := make([]byte, 64)
			for i := w; i < len(keys); i += workers {
				v[0] = byte(i)
				if err := s.Put(keys[i], v); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %d missing after concurrent puts", k)
		}
	}
	// Recovery sees every record despite page rollovers under concurrency.
	s.DropIndex(btree.New())
	if err := s.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(keys) {
		t.Fatalf("recovered Len = %d", s.Len())
	}
}

func TestCompactReclaimsGarbage(t *testing.T) {
	region := pmem.NewRegion(64<<20, pmem.None())
	s := Open(region, btree.New())
	keys := dataset.Generate(dataset.YCSBUniform, 3000, 6)
	// Load, then overwrite everything several times and delete a third:
	// most of the log becomes garbage.
	for round := 0; round < 4; round++ {
		for _, k := range keys {
			if err := s.Put(k, value(k+uint64(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < len(keys); i += 3 {
		if _, err := s.Delete(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := len(s.pages)

	reclaimed, err := s.Compact(btree.New())
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed %d bytes", reclaimed)
	}
	if len(s.pages) >= pagesBefore {
		t.Fatalf("pages %d -> %d, expected shrink", pagesBefore, len(s.pages))
	}
	// The physical frees are epoch-deferred: with no reader pinned, a
	// few advances end the grace period and run them.
	for i := 0; i < 3; i++ {
		epoch.Advance()
	}
	if region.FreeChunks(PageSize) == 0 {
		t.Fatal("no pages returned to the allocator after the grace period")
	}
	// State preserved: deleted keys gone, survivors hold round-3 values.
	want := len(keys) - (len(keys)+2)/3
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	for i, k := range keys {
		v, ok := s.Get(k)
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d visible after compaction", k)
			}
			continue
		}
		if !ok || !bytes.Equal(v, value(k+3)) {
			t.Fatalf("key %d wrong after compaction", k)
		}
	}
	// New writes reuse freed pages instead of growing the region (the bump
	// head is monotonic, so "no growth" is the reuse signal).
	allocatedAfter := region.Allocated()
	for _, k := range keys[:500] {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	if region.Allocated() > allocatedAfter {
		t.Fatalf("region grew after compaction: %d -> %d", allocatedAfter, region.Allocated())
	}
	// Recovery still works over the compacted log. The re-puts above
	// revived the deleted keys among keys[:500] (every third).
	want += (500 + 2) / 3
	s.DropIndex(btree.New())
	if err := s.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != want {
		t.Fatalf("recovered Len = %d, want %d", s.Len(), want)
	}
}

func TestEmptyValueRejected(t *testing.T) {
	s := newStore(btree.New())
	if err := s.Put(1, nil); err != ErrEmptyValue {
		t.Fatalf("got %v", err)
	}
}

func TestPageRollover(t *testing.T) {
	s := newStore(btree.New())
	// Values sized so records straddle page boundaries frequently.
	big := make([]byte, 100_000)
	for i := uint64(1); i <= 50; i++ {
		big[0] = byte(i)
		if err := s.Put(i, big); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.pages) < 2 {
		t.Fatalf("expected multiple pages, got %d", len(s.pages))
	}
	for i := uint64(1); i <= 50; i++ {
		v, ok := s.Get(i)
		if !ok || v[0] != byte(i) || len(v) != len(big) {
			t.Fatalf("key %d corrupted across pages", i)
		}
	}
	// Recovery across pages.
	s.DropIndex(btree.New())
	if err := s.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 50 {
		t.Fatalf("recovered %d", s.Len())
	}
}
