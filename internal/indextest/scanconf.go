package indextest

import (
	"sort"
	"testing"

	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
)

// RunScanConformance is the range-scan conformance suite: ascending
// order, start-boundary inclusion, exact-limit stop, empty ranges, and
// — for indexes exposing streaming cursors — cursor/Scan equivalence,
// cursor resume at lastKey+1, and descending iteration. Every check is
// gated on the capability descriptor, so the suite runs against every
// index and exercises exactly the surface it advertises. The cursor
// checks pull with several buffer sizes, which under -race also
// exercises the pooled cursors' reuse across opens.
func RunScanConformance(t *testing.T, name string, f Factory) {
	caps := index.CapsOf(f())
	if !caps.Scan && !caps.Range {
		t.Run(name+"/scan-unsupported", func(t *testing.T) {
			// An honest refusal: nothing to conform to.
			t.Skipf("%s advertises neither Scan nor Range", name)
		})
		return
	}
	if caps.Scan {
		t.Run(name+"/scan-order", func(t *testing.T) { testScanOrder(t, f) })
		t.Run(name+"/scan-limit", func(t *testing.T) { testScanLimit(t, f) })
		t.Run(name+"/scan-empty", func(t *testing.T) { testScanEmpty(t, f) })
	}
	if caps.Range {
		t.Run(name+"/cursor-matches-scan", func(t *testing.T) { testCursorMatchesScan(t, f) })
		t.Run(name+"/cursor-resume", func(t *testing.T) { testCursorResume(t, f) })
	}
	if caps.RangeDesc {
		t.Run(name+"/cursor-desc", func(t *testing.T) { testCursorDesc(t, f) })
	}
}

// loadConformance fills an index with a reproducible key set — bulk
// load where supported, inserts otherwise, plus a post-load insert and
// delete phase where the index is dynamic — and returns the expected
// sorted live keys (every key maps to itself as value).
func loadConformance(t *testing.T, idx index.Index) []uint64 {
	t.Helper()
	keys := dataset.Generate(dataset.YCSBUniform, 4000, 71)
	if b, ok := idx.(index.Bulk); ok {
		if err := b.BulkLoad(keys, keys); err != nil {
			t.Fatal(err)
		}
	} else {
		for _, k := range keys {
			mustInsert(t, idx, k, k)
		}
	}
	live := map[uint64]bool{}
	for _, k := range keys {
		live[k] = true
	}
	// Dynamic indexes additionally absorb inserts (delta layers, node
	// splits) and deletes, so the ordered walk crosses layer boundaries.
	extra := dataset.Generate(dataset.YCSBNormal, 500, 72)
	if err := idx.Insert(extra[0], extra[0]); err != index.ErrReadOnly {
		if err != nil {
			t.Fatal(err)
		}
		live[extra[0]] = true
		for _, k := range extra[1:] {
			mustInsert(t, idx, k, k)
			live[k] = true
		}
		if del, ok := idx.(index.Deleter); ok && index.CapsOf(idx).Delete {
			for i := 0; i < len(keys); i += 17 {
				del.Delete(keys[i])
				delete(live, keys[i])
			}
		}
	}
	sorted := make([]uint64, 0, len(live))
	for k := range live {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// collectScan drains Scan(start, n) into a slice, checking key==value.
func collectScan(t *testing.T, idx index.Index, start uint64, n int) []uint64 {
	t.Helper()
	var got []uint64
	idx.(index.Scanner).Scan(start, n, func(k, v uint64) bool {
		if k != v {
			t.Fatalf("scan visited (%d,%d), want key==value", k, v)
		}
		got = append(got, k)
		return true
	})
	return got
}

// collectCursor drains a cursor into a slice using the given pull
// buffer size, checking key==value.
func collectCursor(t *testing.T, cur index.Cursor, buf int) []uint64 {
	t.Helper()
	keys := make([]uint64, buf)
	vals := make([]uint64, buf)
	var got []uint64
	for {
		m := cur.Next(keys, vals)
		if m == 0 {
			return got
		}
		for i := 0; i < m; i++ {
			if keys[i] != vals[i] {
				t.Fatalf("cursor yielded (%d,%d), want key==value", keys[i], vals[i])
			}
			got = append(got, keys[i])
		}
	}
}

func testScanOrder(t *testing.T, f Factory) {
	idx := f()
	want := loadConformance(t, idx)
	got := collectScan(t, idx, 0, 0)
	if len(got) != len(want) {
		t.Fatalf("full scan visited %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order broken at %d: %d != %d", i, got[i], want[i])
		}
	}
	// Start boundary: scanning from an existing key includes it...
	mid := want[len(want)/2]
	if g := collectScan(t, idx, mid, 1); len(g) != 1 || g[0] != mid {
		t.Fatalf("scan(%d) started at %v, want inclusive start", mid, g)
	}
	// ...and from the gap right after it, at its successor.
	if next := want[len(want)/2+1]; mid+1 < next {
		if g := collectScan(t, idx, mid+1, 1); len(g) != 1 || g[0] != next {
			t.Fatalf("scan(%d) started at %v, want %d", mid+1, g, next)
		}
	}
}

func testScanLimit(t *testing.T, f Factory) {
	idx := f()
	want := loadConformance(t, idx)
	start := want[len(want)/4]
	if g := collectScan(t, idx, start, 37); len(g) != 37 {
		t.Fatalf("limited scan visited %d entries, want exactly 37", len(g))
	}
	// A limit past the tail stops at exhaustion, not before.
	tail := want[len(want)-5]
	if g := collectScan(t, idx, tail, 100); len(g) != 5 {
		t.Fatalf("tail scan visited %d entries, want the 5 remaining", len(g))
	}
	// Early termination by callback return.
	seen := 0
	idx.(index.Scanner).Scan(start, 0, func(k, v uint64) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Fatalf("callback-stopped scan visited %d, want 7", seen)
	}
}

func testScanEmpty(t *testing.T, f Factory) {
	// An empty index scans nothing.
	if g := collectScan(t, f(), 0, 0); len(g) != 0 {
		t.Fatalf("empty index scan visited %d entries", len(g))
	}
	idx := f()
	want := loadConformance(t, idx)
	if max := want[len(want)-1]; max != ^uint64(0) {
		if g := collectScan(t, idx, max+1, 10); len(g) != 0 {
			t.Fatalf("past-the-end scan visited %v", g)
		}
	}
}

func testCursorMatchesScan(t *testing.T, f Factory) {
	idx := f()
	want := loadConformance(t, idx)
	r := idx.(index.Ranger)
	for _, buf := range []int{1, 3, 64, 1024} {
		cur := r.Range(0)
		got := collectCursor(t, cur, buf)
		cur.Close()
		if len(got) != len(want) {
			t.Fatalf("buf %d: cursor yielded %d entries, want %d", buf, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("buf %d: cursor order broken at %d: %d != %d", buf, i, got[i], want[i])
			}
		}
	}
	// Mid-range start is inclusive, exactly like Scan.
	mid := want[len(want)/2]
	cur := r.Range(mid)
	got := collectCursor(t, cur, 16)
	cur.Close()
	if len(got) == 0 || got[0] != mid {
		t.Fatalf("cursor from %d started at %v, want inclusive start", mid, got[:min(len(got), 1)])
	}
}

func testCursorResume(t *testing.T, f Factory) {
	idx := f()
	want := loadConformance(t, idx)
	r := idx.(index.Ranger)
	start := want[len(want)/5]
	oneShot := collectScan(t, idx, start, 0)
	// Resume after 1, after a partial buffer, and after several pulls:
	// close the cursor mid-range and reopen at lastKey+1 — the
	// concatenation must equal the one-shot scan. This is exactly the
	// wire protocol's cursor-continuation contract.
	for _, cut := range []int{1, 13, 200} {
		if cut >= len(oneShot) {
			continue
		}
		cur := r.Range(start)
		keys := make([]uint64, cut)
		vals := make([]uint64, cut)
		var got []uint64
		for len(got) < cut {
			m := cur.Next(keys[:cut-len(got)], vals[:cut-len(got)])
			if m == 0 {
				break
			}
			got = append(got, keys[:m]...)
		}
		cur.Close()
		if len(got) != cut {
			t.Fatalf("cut %d: first leg yielded %d entries", cut, len(got))
		}
		last := got[len(got)-1]
		if last == ^uint64(0) {
			continue
		}
		cur = r.Range(last + 1)
		got = append(got, collectCursor(t, cur, 64)...)
		cur.Close()
		if len(got) != len(oneShot) {
			t.Fatalf("cut %d: resumed walk yielded %d entries, want %d", cut, len(got), len(oneShot))
		}
		for i := range got {
			if got[i] != oneShot[i] {
				t.Fatalf("cut %d: resumed walk diverged at %d: %d != %d", cut, i, got[i], oneShot[i])
			}
		}
	}
}

func testCursorDesc(t *testing.T, f Factory) {
	idx := f()
	want := loadConformance(t, idx)
	rr := idx.(index.ReverseRanger)
	// From the maximum key: the exact reverse of the ascending walk.
	cur := rr.RangeDesc(^uint64(0))
	got := collectCursor(t, cur, 64)
	cur.Close()
	if len(got) != len(want) {
		t.Fatalf("desc cursor yielded %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[len(want)-1-i] {
			t.Fatalf("desc order broken at %d: %d != %d", i, got[i], want[len(want)-1-i])
		}
	}
	// Start boundary: positions at the last entry with key <= start.
	mid := want[len(want)/2]
	cur = rr.RangeDesc(mid)
	keys := make([]uint64, 1)
	vals := make([]uint64, 1)
	if m := cur.Next(keys, vals); m != 1 || keys[0] != mid {
		t.Fatalf("desc cursor from %d started at %v (m=%d), want inclusive start", mid, keys[0], m)
	}
	cur.Close()
	if next := want[len(want)/2+1]; next > mid+1 {
		cur = rr.RangeDesc(mid + 1)
		if m := cur.Next(keys, vals); m != 1 || keys[0] != mid {
			t.Fatalf("desc cursor from gap %d started at %d, want predecessor %d", mid+1, keys[0], mid)
		}
		cur.Close()
	}
}
