// Package rmi implements a two-stage Recursive Model Index (Kraska et
// al.): a linear root model selects one of L second-stage linear models,
// each of which predicts the position of the key in the sorted array
// within recorded signed error bounds. RMI is read-only: it has no
// insertion or retraining strategy (paper Table I).
package rmi

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"learnedpieces/internal/index"
	"learnedpieces/internal/parallel"
	"learnedpieces/internal/search"
)

// Config controls the RMI shape.
type Config struct {
	// NumLeaves is the second-stage model count; <= 0 picks n/256.
	NumLeaves int
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config { return Config{} }

type leafModel struct {
	slope     float64
	intercept float64
	firstKey  uint64
	minErr    int32 // signed bounds: actual - predicted in [minErr, maxErr]
	maxErr    int32
}

// Index is the two-stage RMI over a flat sorted array.
type Index struct {
	cfg    Config
	keys   []uint64
	vals   []uint64
	leaves []leafModel
	// Root model maps key -> leaf id, anchored at keys[0].
	rootSlope     float64
	rootIntercept float64
	rootFirst     uint64

	builds  atomic.Int64
	buildNs atomic.Int64
}

// New returns an empty RMI; call BulkLoad before use.
func New(cfg Config) *Index { return &Index{cfg: cfg} }

// Name implements index.Index.
func (ix *Index) Name() string { return "rmi" }

// Len returns the number of stored entries.
func (ix *Index) Len() int { return len(ix.keys) }

// ConcurrentReads reports that concurrent Gets are safe.
func (ix *Index) ConcurrentReads() bool { return true }

// Insert is unsupported: RMI is a read-only learned index.
func (ix *Index) Insert(key, value uint64) error { return index.ErrReadOnly }

// BulkLoad trains the two stages over sorted distinct keys.
func (ix *Index) BulkLoad(keys, values []uint64) error {
	t0 := time.Now()
	defer func() {
		ix.builds.Add(1)
		ix.buildNs.Add(time.Since(t0).Nanoseconds())
	}()
	ix.keys = keys
	ix.vals = values
	if len(keys) == 0 {
		ix.leaves = nil
		return nil
	}
	numLeaves := ix.cfg.NumLeaves
	if numLeaves <= 0 {
		numLeaves = len(keys) / 256
	}
	if numLeaves < 1 {
		numLeaves = 1
	}

	// Stage one: least squares of leafID = (i/n)*L over key. The sums
	// reduce over disjoint key chunks in parallel; per-chunk partials are
	// combined in chunk order so the result is deterministic for a given
	// worker count.
	ix.rootFirst = keys[0]
	const minPerWorker = 16 << 10
	workers := parallel.Workers(len(keys) / minPerWorker)
	type sums struct{ sx, sy, sxx, sxy float64 }
	partial := make([]sums, workers)
	parallel.For(workers, len(keys), func(w, lo, hi int) {
		var p sums
		for i := lo; i < hi; i++ {
			x := float64(keys[i] - ix.rootFirst)
			y := float64(i) * float64(numLeaves) / float64(len(keys))
			p.sx += x
			p.sy += y
			p.sxx += x * x
			p.sxy += x * y
		}
		partial[w] = p
	})
	var sx, sy, sxx, sxy float64
	for _, p := range partial {
		sx += p.sx
		sy += p.sy
		sxx += p.sxx
		sxy += p.sxy
	}
	fn := float64(len(keys))
	denom := fn*sxx - sx*sx
	if denom != 0 {
		ix.rootSlope = (fn*sxy - sx*sy) / denom
	}
	ix.rootIntercept = (sy - ix.rootSlope*sx) / fn

	// Assign keys to leaves by the root model, then train each leaf on its
	// assigned range. Root predictions are monotone in the key (the least
	// squares slope over co-sorted x and y is never negative), so each
	// leaf owns a contiguous run and a worker can locate the start of its
	// leaf range by binary search instead of replaying the whole scan —
	// which is what lets disjoint leaf ranges train in parallel.
	ix.leaves = make([]leafModel, numLeaves)
	leafWorkers := len(keys) / minPerWorker
	if leafWorkers > numLeaves {
		leafWorkers = numLeaves
	}
	parallel.For(parallel.Workers(leafWorkers), numLeaves, func(_, leafLo, leafHi int) {
		start := sort.Search(len(keys), func(i int) bool {
			return ix.predictLeaf(keys[i], numLeaves) >= leafLo
		})
		for leafID := leafLo; leafID < leafHi; leafID++ {
			end := start
			for end < len(keys) && ix.predictLeaf(keys[end], numLeaves) == leafID {
				end++
			}
			ix.leaves[leafID] = trainLeaf(keys, start, end)
			start = end
		}
	})
	return nil
}

func (ix *Index) predictLeaf(key uint64, numLeaves int) int {
	var d float64
	if key >= ix.rootFirst {
		d = float64(key - ix.rootFirst)
	} else {
		d = -float64(ix.rootFirst - key)
	}
	p := int(ix.rootSlope*d + ix.rootIntercept)
	if p < 0 {
		return 0
	}
	if p >= numLeaves {
		return numLeaves - 1
	}
	return p
}

func trainLeaf(keys []uint64, start, end int) leafModel {
	if start >= end {
		return leafModel{intercept: float64(start)}
	}
	first := keys[start]
	n := end - start
	var sx, sy, sxx, sxy float64
	for i := start; i < end; i++ {
		x := float64(keys[i] - first)
		y := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	var slope float64
	if denom := fn*sxx - sx*sx; denom != 0 {
		slope = (fn*sxy - sx*sy) / denom
	}
	intercept := (sy - slope*sx) / fn
	m := leafModel{slope: slope, intercept: intercept, firstKey: first}
	m.minErr = math.MaxInt32
	m.maxErr = math.MinInt32
	for i := start; i < end; i++ {
		p := m.predict(keys[i], len(keys))
		e := int32(i - p)
		if e < m.minErr {
			m.minErr = e
		}
		if e > m.maxErr {
			m.maxErr = e
		}
	}
	return m
}

func (m *leafModel) predict(key uint64, n int) int {
	var d float64
	if key >= m.firstKey {
		d = float64(key - m.firstKey)
	} else {
		d = -float64(m.firstKey - key)
	}
	p := int(m.slope*d + m.intercept)
	if p < 0 {
		return 0
	}
	if p >= n {
		return n - 1
	}
	return p
}

// Get returns the value stored under key using the two model stages and a
// bounded binary search within the leaf's recorded error band.
func (ix *Index) Get(key uint64) (uint64, bool) {
	i, ok := ix.find(key)
	if !ok {
		return 0, false
	}
	if ix.vals != nil {
		return ix.vals[i], true
	}
	return 0, true
}

func (ix *Index) find(key uint64) (int, bool) {
	n := len(ix.keys)
	if n == 0 {
		return 0, false
	}
	leaf := &ix.leaves[ix.predictLeaf(key, len(ix.leaves))]
	p := leaf.predict(key, n)
	lo := p + int(leaf.minErr)
	hi := p + int(leaf.maxErr) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return 0, false
	}
	return search.FindBounded(ix.keys, key, lo, hi)
}

// GetBatch implements index.BatchGetter: stage one prediction per key,
// then resolve all the error windows with the interleaved lockstep
// kernel so the batch's leaf-array cache misses overlap.
func (ix *Index) GetBatch(keys []uint64, vals []uint64, found []bool) {
	n := len(ix.keys)
	for off := 0; off < len(keys); off += search.MaxLanes {
		end := off + search.MaxLanes
		if end > len(keys) {
			end = len(keys)
		}
		var b search.Batch
		for _, key := range keys[off:end] {
			if n == 0 {
				b.Add(nil, key, 0, 0)
				continue
			}
			leaf := &ix.leaves[ix.predictLeaf(key, len(ix.leaves))]
			p := leaf.predict(key, n)
			b.Add(ix.keys, key, p+int(leaf.minErr), p+int(leaf.maxErr)+1)
		}
		b.Run()
		for l := 0; l < b.Len(); l++ {
			i := off + l
			if !b.Found(l) {
				vals[i], found[i] = 0, false
				continue
			}
			found[i] = true
			if ix.vals != nil {
				vals[i] = ix.vals[b.Pos(l)]
			} else {
				vals[i] = 0
			}
		}
	}
}

// lowerBound locates the first position with keys[pos] >= key through
// the same two model stages as Get. The leaf's error band is only
// guaranteed to contain keys that are present, so an absent range
// start falls back to a whole-array kernel search when the windowed
// result violates the lower-bound property.
func (ix *Index) lowerBound(key uint64) int {
	n := len(ix.keys)
	if n == 0 {
		return 0
	}
	leaf := &ix.leaves[ix.predictLeaf(key, len(ix.leaves))]
	p := leaf.predict(key, n)
	lo := p + int(leaf.minErr)
	hi := p + int(leaf.maxErr) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	pos := search.LowerBound(ix.keys, key, lo, hi)
	if (pos > 0 && ix.keys[pos-1] >= key) || (pos < n && ix.keys[pos] < key) {
		pos = search.LowerBound(ix.keys, key, 0, n)
	}
	return pos
}

// Range implements index.Ranger: one model descent locates the lower
// bound, then the pooled cursor walks the flat sorted array.
func (ix *Index) Range(start uint64) index.Cursor {
	return index.NewSliceCursor(ix.keys, ix.vals, ix.lowerBound(start), false)
}

// RangeDesc implements index.ReverseRanger: the flat array walks
// backward as cheaply as forward.
func (ix *Index) RangeDesc(start uint64) index.Cursor {
	pos := search.UpperBound(ix.keys, start, 0, len(ix.keys)) - 1
	return index.NewSliceCursor(ix.keys, ix.vals, pos, true)
}

// Scan visits entries with key >= start in ascending order.
func (ix *Index) Scan(start uint64, n int, fn func(key, value uint64) bool) {
	i := ix.lowerBound(start)
	count := 0
	for ; i < len(ix.keys); i++ {
		if n > 0 && count >= n {
			return
		}
		var v uint64
		if ix.vals != nil {
			v = ix.vals[i]
		}
		if !fn(ix.keys[i], v) {
			return
		}
		count++
	}
}

// AvgDepth reports the two model stages (Table II lists RMI as depth 2).
func (ix *Index) AvgDepth() float64 { return 2 }

// RetrainStats implements index.RetrainReporter. RMI has no incremental
// retraining strategy, so each "retrain" is a full BulkLoad — the model
// (re)build the recovery path pays (Fig 16).
func (ix *Index) RetrainStats() (count, totalNs int64) {
	return ix.builds.Load(), ix.buildNs.Load()
}

// Sizes reports the footprint: models are structure, the sorted arrays
// are keys/values.
func (ix *Index) Sizes() index.Sizes {
	return index.Sizes{
		Structure: int64(len(ix.leaves))*32 + 24,
		Keys:      int64(len(ix.keys)) * 8,
		Values:    int64(len(ix.vals)) * 8,
	}
}

// MaxLeafError returns the largest leaf error band width; RMI has no
// a-priori bound (paper: "Unfixed"), this is the measured value.
func (ix *Index) MaxLeafError() int {
	worst := 0
	for i := range ix.leaves {
		if w := int(ix.leaves[i].maxErr) - int(ix.leaves[i].minErr); w > worst {
			worst = w
		}
	}
	return worst
}
