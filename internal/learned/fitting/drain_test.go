package fitting

import (
	"testing"

	"learnedpieces/internal/dataset"
	"learnedpieces/internal/retrain"
	"learnedpieces/internal/workload"
)

// TestDrainConverges checks that after an insert-heavy phase,
// DrainRetrains leaves the same bounded structure the inline path
// maintains: no live leaf holds a buffer at or past Reserve, and no
// in-place leaf carries a search window wider than eps plus the slots
// it absorbed since its last rebuild. A backlogged async pool lets live
// leaves run far past both bounds mid-flight; the drain loop has to
// install and replay until the excess is retrained away, not merely
// wait for the queue to empty.
func TestDrainConverges(t *testing.T) {
	const n = 50000
	keys := dataset.Generate(dataset.YCSBNormal, n, 42)
	var load, inserts []uint64
	for i, k := range keys {
		if i%4 == 0 {
			load = append(load, k)
		} else {
			inserts = append(inserts, k)
		}
	}
	ops := workload.InsertStream(inserts, 44)
	for _, mode := range []Mode{Inplace, Buffer} {
		for _, workers := range []int{0, 1, 4} {
			cfg := Config{Mode: mode, Eps: 32, Reserve: 64}
			ix := New(cfg)
			ix.SetRetrainPool(retrain.NewPool(workers, 0))
			if err := ix.BulkLoad(load, load); err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				if err := ix.Insert(op.Key, op.Key); err != nil {
					t.Fatal(err)
				}
			}
			ix.DrainRetrains()
			for id, l := range ix.leaves {
				v, ok := ix.inner.Get(l.firstKey)
				if !ok || v != uint64(id) {
					continue // retired leaf, kept only for stable ids
				}
				if len(l.bufK) >= cfg.Reserve {
					t.Errorf("mode=%v workers=%d: live leaf buffer %d >= Reserve %d after drain",
						mode, workers, len(l.bufK), cfg.Reserve)
				}
				if l.maxErr > cfg.Eps+cfg.Reserve {
					t.Errorf("mode=%v workers=%d: live leaf maxErr %d > eps+Reserve %d after drain",
						mode, workers, l.maxErr, cfg.Eps+cfg.Reserve)
				}
			}
			if got := ix.Len(); got != n {
				t.Fatalf("mode=%v workers=%d: Len=%d want %d", mode, workers, got, n)
			}
		}
	}
}
