package core

import (
	"sort"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/pla"
)

// A Structure is the index-structure dimension (§IV-B): given the sorted
// first keys of the leaves, it locates the leaf covering a key. The four
// variants are the ones the paper benchmarks in Fig 17(c).
type Structure interface {
	Name() string
	// Build (re)constructs the structure over the leaf first keys.
	Build(firsts []uint64)
	// Locate returns the index of the last leaf whose first key is <= key
	// (0 when key precedes every leaf).
	Locate(key uint64) int
	// Depth is the average number of levels traversed per Locate.
	Depth() float64
	// SizeBytes is the structure's memory footprint.
	SizeBytes() int64
}

// Structures returns the structure dimension's catalogue.
func Structures() []Structure {
	return []Structure{NewBTreeTop(), NewLRS(8), NewRMITop(0), NewATS(16, 64)}
}

// BTreeTop is the comparison-based baseline structure (FITing-tree).
type BTreeTop struct {
	t *btree.BTree
}

// NewBTreeTop returns an empty B+tree structure.
func NewBTreeTop() *BTreeTop { return &BTreeTop{t: btree.New()} }

// Name implements Structure.
func (s *BTreeTop) Name() string { return "btree" }

// Build implements Structure.
func (s *BTreeTop) Build(firsts []uint64) {
	s.t = btree.New()
	ids := make([]uint64, len(firsts))
	for i := range ids {
		ids[i] = uint64(i)
	}
	// firsts is sorted by construction, the only condition BulkLoad checks.
	_ = s.t.BulkLoad(firsts, ids)
}

// Locate implements Structure.
func (s *BTreeTop) Locate(key uint64) int {
	_, id, ok := s.t.Floor(key)
	if !ok {
		return 0
	}
	return int(id)
}

// Depth implements Structure.
func (s *BTreeTop) Depth() float64 { return s.t.AvgDepth() }

// SizeBytes implements Structure.
func (s *BTreeTop) SizeBytes() int64 {
	sz := s.t.Sizes()
	return sz.Structure + sz.Keys + sz.Values
}

// LRS is the linear recursive structure (PGM-Index): Opt-PLA levels over
// the leaf first keys, descended by calculation.
type LRS struct {
	eps     int
	domains [][]uint64
	levels  [][]pla.Segment
}

// NewLRS returns an LRS with the given internal error bound (<=0: 8).
func NewLRS(eps int) *LRS {
	if eps <= 0 {
		eps = 8
	}
	return &LRS{eps: eps}
}

// Name implements Structure.
func (s *LRS) Name() string { return "lrs" }

// Build implements Structure.
func (s *LRS) Build(firsts []uint64) {
	s.domains = nil
	s.levels = nil
	if len(firsts) == 0 {
		return
	}
	domain := firsts
	for {
		segs := pla.BuildOptPLA(domain, s.eps)
		s.domains = append(s.domains, domain)
		s.levels = append(s.levels, segs)
		if len(segs) == 1 {
			return
		}
		next := make([]uint64, len(segs))
		for i := range segs {
			next[i] = segs[i].FirstKey
		}
		domain = next
	}
}

// Locate implements Structure.
func (s *LRS) Locate(key uint64) int {
	if len(s.levels) == 0 {
		return 0
	}
	idx := 0
	for lvl := len(s.levels) - 1; lvl >= 0; lvl-- {
		seg := &s.levels[lvl][idx]
		idx = floorWindow(s.domains[lvl], seg.Predict(key), s.eps, key)
	}
	return idx
}

// Depth implements Structure.
func (s *LRS) Depth() float64 { return float64(len(s.levels)) }

// SizeBytes implements Structure.
func (s *LRS) SizeBytes() int64 {
	var n int64
	for _, lvl := range s.levels {
		n += int64(len(lvl)) * 56
	}
	for i := 1; i < len(s.domains); i++ {
		n += int64(len(s.domains[i])) * 8
	}
	return n
}

// floorWindow returns the index of the greatest domain element <= key,
// searching an eps window around p and correcting outward.
func floorWindow(domain []uint64, p, eps int, key uint64) int {
	lo := p - eps - 1
	hi := p + eps + 2
	if lo < 0 {
		lo = 0
	}
	if hi > len(domain) {
		hi = len(domain)
	}
	w := domain[lo:hi]
	j := lo + sort.Search(len(w), func(i int) bool { return w[i] > key })
	for j < len(domain) && domain[j] <= key {
		j++
	}
	for j > 0 && domain[j-1] > key {
		j--
	}
	if j == 0 {
		return 0
	}
	return j - 1
}

// RMITop is the two-layer RMI structure (XIndex's root).
type RMITop struct {
	models int
	firsts []uint64
	// Root linear stage.
	rootFirst          uint64
	rootSlope, rootInt float64
	// Second stage: per-model linear with error bounds.
	slopes, ints []float64
	anchors      []uint64
	minE, maxE   []int32
	bounds       []int // model m covers firsts[bounds[m]:bounds[m+1]]
}

// NewRMITop returns a two-layer RMI; models <= 0 picks len/64.
func NewRMITop(models int) *RMITop { return &RMITop{models: models} }

// Name implements Structure.
func (s *RMITop) Name() string { return "rmi" }

// Build implements Structure.
func (s *RMITop) Build(firsts []uint64) {
	s.firsts = firsts
	if len(firsts) == 0 {
		return
	}
	m := s.models
	if m <= 0 {
		m = len(firsts) / 64
	}
	if m < 1 {
		m = 1
	}
	seg := pla.FitLinear(firsts, 0, len(firsts))
	scale := float64(m) / float64(len(firsts))
	s.rootFirst = firsts[0]
	s.rootSlope = seg.Slope * scale
	s.rootInt = (seg.Intercept - float64(seg.Start)) * scale
	s.slopes = make([]float64, m)
	s.ints = make([]float64, m)
	s.anchors = make([]uint64, m)
	s.minE = make([]int32, m)
	s.maxE = make([]int32, m)
	s.bounds = make([]int, m+1)
	s.bounds[m] = len(firsts)
	pos := 0
	for mi := 0; mi < m; mi++ {
		s.bounds[mi] = pos
		for pos < len(firsts) && s.rootModel(firsts[pos], m) <= mi {
			pos++
		}
		lo, hi := s.bounds[mi], pos
		fit := pla.Segment{Intercept: float64(lo)}
		if lo < hi {
			fit = pla.FitLinear(firsts, lo, hi)
		}
		s.slopes[mi] = fit.Slope
		s.ints[mi] = fit.Intercept
		s.anchors[mi] = fit.FirstKey
		var mn, mx int32
		for i := lo; i < hi; i++ {
			e := int32(i - s.predict(mi, firsts[i]))
			if e < mn {
				mn = e
			}
			if e > mx {
				mx = e
			}
		}
		s.minE[mi], s.maxE[mi] = mn, mx
	}
}

func (s *RMITop) rootModel(key uint64, m int) int {
	var d float64
	if key >= s.rootFirst {
		d = float64(key - s.rootFirst)
	} else {
		d = -float64(s.rootFirst - key)
	}
	p := int(s.rootSlope*d + s.rootInt)
	if p < 0 {
		return 0
	}
	if p >= m {
		return m - 1
	}
	return p
}

func (s *RMITop) predict(mi int, key uint64) int {
	var d float64
	if key >= s.anchors[mi] {
		d = float64(key - s.anchors[mi])
	} else {
		d = -float64(s.anchors[mi] - key)
	}
	p := int(s.slopes[mi]*d + s.ints[mi])
	if p < 0 {
		return 0
	}
	if p >= len(s.firsts) {
		return len(s.firsts) - 1
	}
	return p
}

// Locate implements Structure.
func (s *RMITop) Locate(key uint64) int {
	if len(s.firsts) == 0 {
		return 0
	}
	mi := s.rootModel(key, len(s.slopes))
	p := s.predict(mi, key)
	return floorWindow(s.firsts, p, int(s.maxE[mi]-s.minE[mi])+1, key)
}

// Depth implements Structure.
func (s *RMITop) Depth() float64 { return 2 }

// SizeBytes implements Structure.
func (s *RMITop) SizeBytes() int64 { return int64(len(s.slopes))*40 + 32 }

// ATS is the asymmetric tree structure (ALEX): model-routed inner nodes
// whose subtrees are deeper exactly where the key distribution is dense.
type ATS struct {
	maxDirect int // range-leaf size
	maxFanout int
	firsts    []uint64
	root      atsNode
}

type atsNode interface{}

type atsInner struct {
	firstKey  uint64
	slope     float64
	intercept float64
	children  []atsNode
}

type atsRange struct{ lo, hi int }

// NewATS returns an ATS; maxDirect <= 0 picks 16, maxFanout <= 0 picks 64.
func NewATS(maxDirect, maxFanout int) *ATS {
	if maxDirect <= 0 {
		maxDirect = 16
	}
	if maxFanout <= 0 {
		maxFanout = 64
	}
	return &ATS{maxDirect: maxDirect, maxFanout: maxFanout}
}

// Name implements Structure.
func (s *ATS) Name() string { return "ats" }

// Build implements Structure.
func (s *ATS) Build(firsts []uint64) {
	s.firsts = firsts
	if len(firsts) == 0 {
		s.root = atsRange{0, 0}
		return
	}
	s.root = s.build(0, len(firsts))
}

func (s *ATS) build(lo, hi int) atsNode {
	n := hi - lo
	if n <= s.maxDirect {
		return atsRange{lo, hi}
	}
	fanout := 2
	for fanout < s.maxFanout && n/fanout > s.maxDirect/2 {
		fanout *= 2
	}
	in, starts, ok := s.makeInner(lo, hi, fanout)
	if !ok {
		return atsRange{lo, hi}
	}
	for c := 0; c < len(in.children); c++ {
		in.children[c] = s.build(starts[c], starts[c+1])
	}
	return in
}

// makeInner fits the routing model over firsts[lo:hi] and partitions the
// range into per-child bounds (falling back to a model-consistent binary
// split when the fit is degenerate). ok is false when even the fallback
// cannot separate the keys — the caller should use a range leaf.
func (s *ATS) makeInner(lo, hi, fanout int) (*atsInner, []int, bool) {
	n := hi - lo
	fit := pla.FitLinear(s.firsts, lo, hi)
	in := &atsInner{
		firstKey:  s.firsts[lo],
		slope:     fit.Slope * float64(fanout) / float64(n),
		intercept: (fit.Intercept - float64(fit.Start)) * float64(fanout) / float64(n),
		children:  make([]atsNode, fanout),
	}
	starts := s.partitionRange(in, lo, hi)
	if maxRunInts(starts) < n {
		return in, starts, true
	}
	// Degenerate model: binary split anchored at the median key; the cut
	// is derived from the model itself so routing and storage agree.
	mid := lo + n/2
	in.children = make([]atsNode, 2)
	in.slope = 1 / float64(s.firsts[mid]-s.firsts[lo])
	in.intercept = 0
	if in.childSlot(s.firsts[hi-1]) < 1 {
		// Float rounding defeated the split (pathological spacing): a
		// plain range leaf is still correct, just slower.
		return nil, nil, false
	}
	starts = s.partitionRange(in, lo, hi)
	return in, starts, true
}

// partitionRange groups firsts[lo:hi] into contiguous per-child runs
// exactly matching the inner model's routing.
func (s *ATS) partitionRange(in *atsInner, lo, hi int) []int {
	fanout := len(in.children)
	starts := make([]int, fanout+1)
	starts[fanout] = hi
	pos := lo
	for c := 0; c < fanout; c++ {
		starts[c] = pos
		for pos < hi && in.childSlot(s.firsts[pos]) <= c {
			pos++
		}
	}
	return starts
}

func maxRunInts(bounds []int) int {
	m := 0
	for i := 0; i+1 < len(bounds); i++ {
		if w := bounds[i+1] - bounds[i]; w > m {
			m = w
		}
	}
	return m
}

func (in *atsInner) childSlot(key uint64) int {
	var d float64
	if key >= in.firstKey {
		d = float64(key - in.firstKey)
	} else {
		d = -float64(in.firstKey - key)
	}
	p := int(in.slope*d + in.intercept)
	if p < 0 {
		return 0
	}
	if p >= len(in.children) {
		return len(in.children) - 1
	}
	return p
}

// Locate implements Structure.
func (s *ATS) Locate(key uint64) int {
	n := s.root
	for {
		switch x := n.(type) {
		case *atsInner:
			n = x.children[x.childSlot(key)]
		case atsRange:
			w := s.firsts[x.lo:x.hi]
			j := x.lo + sort.Search(len(w), func(i int) bool { return w[i] > key })
			if j == 0 {
				return 0
			}
			return j - 1
		}
	}
}

// Depth implements Structure.
func (s *ATS) Depth() float64 {
	var sum, leaves float64
	var walk func(n atsNode, d float64)
	walk = func(n atsNode, d float64) {
		switch x := n.(type) {
		case *atsInner:
			for _, c := range x.children {
				walk(c, d+1)
			}
		case atsRange:
			w := float64(x.hi - x.lo)
			if w == 0 {
				w = 1
			}
			sum += d * w
			leaves += w
		}
	}
	walk(s.root, 0)
	if leaves == 0 {
		return 0
	}
	return sum / leaves
}

// SizeBytes implements Structure.
func (s *ATS) SizeBytes() int64 {
	var n int64
	var walk func(node atsNode)
	walk = func(node atsNode) {
		switch x := node.(type) {
		case *atsInner:
			n += 48 + int64(len(x.children))*16
			for _, c := range x.children {
				walk(c)
			}
		case atsRange:
			n += 16
		}
	}
	walk(s.root)
	return n
}
