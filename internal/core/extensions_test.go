package core

import (
	"math/rand"
	"testing"

	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
	"learnedpieces/internal/indextest"
)

// zipfWeights builds per-leaf access weights with a few very hot leaves.
func zipfWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
	w := make([]float64, n)
	for i := 0; i < n*50; i++ {
		w[z.Uint64()]++
	}
	for i := range w {
		w[i]++ // every leaf is reachable
	}
	return w
}

func TestHotATSLocateCorrect(t *testing.T) {
	firsts := dataset.Generate(dataset.OSMLike, 20000, 31)
	s := NewHotATS(16, 64)
	s.SetWeights(zipfWeights(len(firsts), 32))
	s.Build(firsts)
	for i, f := range firsts {
		if got := s.Locate(f); got != i {
			t.Fatalf("Locate(first[%d]) = %d", i, got)
		}
	}
	for i := 0; i+1 < len(firsts); i += 57 {
		mid := firsts[i] + (firsts[i+1]-firsts[i])/2
		if mid == firsts[i] {
			continue
		}
		if got := s.Locate(mid); got != i {
			t.Fatalf("Locate(mid %d) = %d, want %d", mid, got, i)
		}
	}
	if got := s.Locate(0); got != 0 {
		t.Fatalf("Locate(0) = %d", got)
	}
	if got := s.Locate(^uint64(0)); got != len(firsts)-1 {
		t.Fatalf("Locate(max) = %d", got)
	}
}

// TestHotATSShortensHotPaths pins the §V-B1 claim: with skewed access
// weights, the weighted depth of the hot-aware tree is below the plain
// ATS's weighted depth over the same leaves.
func TestHotATSShortensHotPaths(t *testing.T) {
	firsts := dataset.Generate(dataset.YCSBNormal, 50000, 33)
	w := zipfWeights(len(firsts), 34)

	hot := NewHotATS(16, 64)
	hot.SetWeights(w)
	hot.Build(firsts)

	plain := NewHotATS(16, 64) // same measurement machinery, no heat
	plain.SetWeights(w)
	plain.ats.Build(firsts) // bypass weighting: plain ATS construction

	hd, pd := hot.WeightedDepth(), plain.WeightedDepth()
	if hd >= pd {
		t.Fatalf("hot-aware weighted depth %.3f not below plain %.3f", hd, pd)
	}
}

func TestHotATSWithoutWeightsMatchesATS(t *testing.T) {
	firsts := dataset.Generate(dataset.YCSBUniform, 5000, 35)
	hot := NewHotATS(16, 64)
	hot.Build(firsts)
	plain := NewATS(16, 64)
	plain.Build(firsts)
	for i := 0; i < len(firsts); i += 11 {
		if hot.Locate(firsts[i]) != plain.Locate(firsts[i]) {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestAppendInsertConformance(t *testing.T) {
	indextest.RunAll(t, "append-hybrid", func() index.Index {
		return Compose(OptPLA{Eps: 16}, NewBTreeTop(), AppendInsert{BufSize: 64}, RetrainNode{})
	})
}

// TestAppendInsertSequentialEfficiency pins the §V-B2 claim: on a purely
// sequential stream the hybrid strategy retrains far less than the
// buffer strategy (appends bypass the buffer entirely until the tail cap).
func TestAppendInsertSequentialEfficiency(t *testing.T) {
	seq := dataset.Generate(dataset.Sequential, 30000, 0)
	load, inserts := seq[:1000], seq[1000:]

	app := Compose(OptPLA{Eps: 16}, NewBTreeTop(), AppendInsert{BufSize: 64}, RetrainNode{})
	buf := Compose(OptPLA{Eps: 16}, NewBTreeTop(), BufferInsert{Size: 64}, RetrainNode{})
	for _, c := range []*Composed{app, buf} {
		if err := c.BulkLoad(load, load); err != nil {
			t.Fatal(err)
		}
		for _, k := range inserts {
			if err := c.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if c.Len() != len(seq) {
			t.Fatalf("%s: Len = %d, want %d", c.Name(), c.Len(), len(seq))
		}
		for i := 0; i < len(seq); i += 37 {
			if v, ok := c.Get(seq[i]); !ok || v != seq[i] {
				t.Fatalf("%s: get(%d) = %d,%v", c.Name(), seq[i], v, ok)
			}
		}
	}
	ar, _ := app.RetrainStats()
	br, _ := buf.RetrainStats()
	if ar*4 > br {
		t.Fatalf("append-hybrid retrained %d times, buffer %d: expected >=4x fewer", ar, br)
	}
}

// TestAppendInsertMixedStream verifies the fallback path: interleaved
// random keys go through the buffer and everything stays consistent.
func TestAppendInsertMixedStream(t *testing.T) {
	c := Compose(LSA{SegLen: 128}, NewLRS(8), AppendInsert{BufSize: 32, TailCap: 512}, RetrainNode{})
	rng := rand.New(rand.NewSource(36))
	ref := make(map[uint64]uint64)
	next := uint64(1_000_000)
	for i := 0; i < 20000; i++ {
		var k uint64
		if rng.Intn(2) == 0 {
			next += uint64(rng.Intn(100) + 1)
			k = next // sequential tail
		} else {
			k = uint64(rng.Intn(900000) + 1) // random low key
		}
		if err := c.Insert(k, k^5); err != nil {
			t.Fatal(err)
		}
		ref[k] = k ^ 5
	}
	if c.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", c.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := c.Get(k); !ok || got != v {
			t.Fatalf("get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}
