package viper

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/cceh"
	"learnedpieces/internal/dataset"
	"learnedpieces/internal/index"
	"learnedpieces/internal/parallel"
	"learnedpieces/internal/pmem"
	"learnedpieces/internal/sharded"
)

// forceWorkers pins the global fan-out for the duration of a test (the
// CI box may have a single core; the override still exercises the
// concurrent merge logic through goroutine interleaving).
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	t.Cleanup(func() { parallel.SetWorkers(prev) })
}

// TestConcurrentPutLiveCount is the regression test for the Put
// live-count race: two writers inserting the same new key concurrently
// must not double-count it. Before Store.Put derived existence from
// index.Upserter (atomically with the insert), the unsynchronized
// Get-then-Insert pair let both writers observe the key as absent and
// liveLen ended up above the true key count. Run under -race in CI.
func TestConcurrentPutLiveCount(t *testing.T) {
	// Force real thread-level interleaving even on single-core CI boxes.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	keys := dataset.Generate(dataset.YCSBUniform, 1500, 11)
	idx := sharded.New(func() index.Index { return btree.New() },
		sharded.BoundariesFromSample(keys, 16))
	s := newStore(idx)
	const writers = 4
	var wg sync.WaitGroup
	// For every key, release a pack of writers at the same instant so
	// they race to insert the same *new* key. Each insert must be
	// counted exactly once.
	for _, k := range keys {
		start := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(k uint64, w int) {
				defer wg.Done()
				v := make([]byte, 32)
				v[0] = byte(w)
				<-start
				if err := s.Put(k, v); err != nil {
					t.Errorf("put: %v", err)
				}
			}(k, w)
		}
		close(start)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d (live-count race)", s.Len(), len(keys))
	}
	if got := idx.Len(); got != len(keys) {
		t.Fatalf("index Len = %d, want %d", got, len(keys))
	}
}

// TestConcurrentPutMultiGetDelete exercises the full concurrent surface
// (Put, MultiGet, Delete) against a sharded index under -race.
func TestConcurrentPutMultiGetDelete(t *testing.T) {
	keys := dataset.Generate(dataset.YCSBUniform, 8000, 12)
	idx := sharded.New(func() index.Index { return btree.New() },
		sharded.BoundariesFromSample(keys, 16))
	s := newStore(idx)
	for _, k := range keys[:4000] {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // writers: insert the second half
			defer wg.Done()
			for i := 4000 + w; i < len(keys); i += 2 {
				if err := s.Put(keys[i], value(keys[i])); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // deleter: remove a slice of the preloaded half
		defer wg.Done()
		for _, k := range keys[:1000] {
			if _, err := s.Delete(k); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // batched reader over a stable slice
		defer wg.Done()
		batch := keys[2000:4000]
		for i := 0; i < 20; i++ {
			vals := s.MultiGet(batch)
			for j, v := range vals {
				if v == nil {
					t.Errorf("key %d lost during concurrent ops", batch[j])
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	want := len(keys) - 1000
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

func TestMultiGet(t *testing.T) {
	s := newStore(btree.New())
	keys := dataset.Generate(dataset.OSMLike, 3000, 3)
	for _, k := range keys {
		if err := s.Put(k, value(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete(keys[1]); err != nil {
		t.Fatal(err)
	}
	// Batch mixing present, deleted and absent keys, unsorted.
	batch := []uint64{keys[100], keys[1], 0xffff_ffff_ffff_fff0, keys[0], keys[2999]}
	vals := s.MultiGet(batch)
	if len(vals) != len(batch) {
		t.Fatalf("got %d results", len(vals))
	}
	for _, i := range []int{0, 3, 4} {
		if !bytes.Equal(vals[i], value(batch[i])) {
			t.Fatalf("batch[%d] = %q", i, vals[i])
		}
	}
	if vals[1] != nil {
		t.Fatal("deleted key returned a value")
	}
	if vals[2] != nil {
		t.Fatal("absent key returned a value")
	}
	// MultiGet agrees with Get over the full key set.
	all := s.MultiGet(keys)
	for i, k := range keys {
		got, ok := s.Get(k)
		if ok != (all[i] != nil) || (ok && !bytes.Equal(got, all[i])) {
			t.Fatalf("MultiGet disagrees with Get at key %d", k)
		}
	}
}

// contents captures the full logical state of the store.
func contents(t *testing.T, s *Store, universe []uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	for _, k := range universe {
		if v, ok := s.Get(k); ok {
			out[k] = string(v)
		}
	}
	return out
}

// buildMultiPageStore produces a deterministic store whose log spans
// several pages and contains overwrites and tombstones (including runs
// that straddle page boundaries).
func buildMultiPageStore(t *testing.T, region *pmem.Region) (*Store, []uint64) {
	t.Helper()
	s := Open(region, btree.New())
	keys := dataset.Generate(dataset.YCSBNormal, 6000, 21)
	big := make([]byte, 700) // ~6000*713B ≈ 4 pages per round
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			copy(big, fmt.Sprintf("r%d-%d", round, i))
			if err := s.Put(k, big); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range keys[1000:2000] {
		if _, err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys[1500:1700] { // revive some deleted keys
		if err := s.Put(k, []byte("revived")); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.pages) < 4 {
		t.Fatalf("want a multi-page log, got %d pages", len(s.pages))
	}
	return s, keys
}

// TestRecoverSerialParallelEquivalence asserts the property the parallel
// scan's chunk-ordered merge must preserve: serial and parallel Recover
// see identical key→value contents, including overwrites and tombstones
// spanning page boundaries.
func TestRecoverSerialParallelEquivalence(t *testing.T) {
	s, keys := buildMultiPageStore(t, pmem.NewRegion(64<<20, pmem.None()))
	want := contents(t, s, keys)

	forceWorkers(t, 1)
	if err := s.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	serial := contents(t, s, keys)
	serialLen := s.Len()

	forceWorkers(t, 7) // deliberately not a divisor of the page count
	if err := s.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	par := contents(t, s, keys)

	if len(serial) != len(want) {
		t.Fatalf("serial recovery lost state: %d vs %d keys", len(serial), len(want))
	}
	compareContents(t, want, serial, "serial recovery")
	compareContents(t, serial, par, "parallel vs serial recovery")
	if s.Len() != serialLen {
		t.Fatalf("Len diverged: %d vs %d", s.Len(), serialLen)
	}
}

// TestCompactSerialParallelEquivalence builds two identical stores and
// compacts one serially, one in parallel: contents must match each other
// and the pre-compaction state.
func TestCompactSerialParallelEquivalence(t *testing.T) {
	s1, keys := buildMultiPageStore(t, pmem.NewRegion(64<<20, pmem.None()))
	s2, _ := buildMultiPageStore(t, pmem.NewRegion(64<<20, pmem.None()))
	want := contents(t, s1, keys)

	forceWorkers(t, 1)
	if _, err := s1.Compact(btree.New()); err != nil {
		t.Fatal(err)
	}
	forceWorkers(t, 7)
	if _, err := s2.Compact(btree.New()); err != nil {
		t.Fatal(err)
	}
	compareContents(t, want, contents(t, s1, keys), "serial compaction")
	compareContents(t, want, contents(t, s2, keys), "parallel compaction")
	if s1.Len() != s2.Len() {
		t.Fatalf("Len diverged: %d vs %d", s1.Len(), s2.Len())
	}
	// And both logs still recover (in parallel) to the same state.
	if err := s2.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	compareContents(t, want, contents(t, s2, keys), "recovery after parallel compaction")
}

// TestBulkPutParallelEquivalence checks the worker-pool append path
// against the serial one.
func TestBulkPutParallelEquivalence(t *testing.T) {
	keys := dataset.Generate(dataset.OSMLike, 20000, 4)
	v := value(7)
	load := func(workers int) *Store {
		forceWorkers(t, workers)
		s := newStore(btree.New())
		if err := s.BulkPut(keys, v); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := load(1)
	par := load(6)
	compareContents(t, contents(t, serial, keys), contents(t, par, keys), "parallel bulk put")
	if par.Len() != len(keys) {
		t.Fatalf("Len = %d", par.Len())
	}
	// Parallel appends land at interleaved offsets; recovery must still
	// resolve every key.
	forceWorkers(t, 6)
	if err := par.Recover(btree.New()); err != nil {
		t.Fatal(err)
	}
	if par.Len() != len(keys) {
		t.Fatalf("recovered Len = %d", par.Len())
	}
}

func compareContents(t *testing.T, want, got map[uint64]string, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys, want %d", what, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %d = %q, want %q", what, k, got[k], v)
		}
	}
}

// TestScanCapabilityError: a sharded index over an unordered inner type
// reports the missing scan capability up front instead of silently
// visiting nothing.
func TestScanCapabilityError(t *testing.T) {
	idx := sharded.New(func() index.Index { return cceh.New() }, []uint64{1 << 32})
	s := newStore(idx)
	if err := s.Put(42, []byte("v")); err != nil {
		t.Fatal(err)
	}
	err := s.Scan(0, 10, func(uint64, []byte) bool { t.Fatal("scan visited an entry"); return false })
	if err == nil {
		t.Fatal("Scan over unscannable sharded index returned nil error")
	}
}
