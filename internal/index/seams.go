package index

// Seam is the typed dispatch surface of an index: the optional-interface
// values a store's hot paths call through after resolving them exactly
// once per index swap. Fields are nil when the index lacks the
// capability; callers gate on the matching Caps field (or a nil check)
// before dispatching.
//
// Seam exists so the rest of the repository never type-asserts against
// the optional interfaces ad hoc — the caps-discipline analyzer
// (cmd/pieceslint) forbids raw assertions outside this package, which
// keeps Caps the single source of truth about what an index can do.
type Seam struct {
	Upsert       Upserter
	Delete       Deleter
	Scan         Scanner
	Range        Ranger
	RangeDesc    ReverseRanger
	Bulk         Bulk
	Batch        BatchGetter
	AsyncRetrain AsyncRetrainer
	Tune         RetrainTuner
}

// Seams resolves idx's hot-path dispatch surface. This is the one
// sanctioned resolution site: call it when an index is installed, keep
// the result, and dispatch through its fields.
func Seams(idx Index) Seam {
	var s Seam
	s.Upsert, _ = idx.(Upserter)
	s.Delete, _ = idx.(Deleter)
	s.Scan, _ = idx.(Scanner)
	s.Range, _ = idx.(Ranger)
	s.RangeDesc, _ = idx.(ReverseRanger)
	s.Bulk, _ = idx.(Bulk)
	s.Batch, _ = idx.(BatchGetter)
	s.AsyncRetrain, _ = idx.(AsyncRetrainer)
	s.Tune, _ = idx.(RetrainTuner)
	return s
}

// LoadSorted installs sorted distinct keys (with parallel values; values
// may be nil for key-only loads) into idx through its bulk path when it
// has one, falling back to one insert per key. It is the capability-safe
// replacement for the idx.(Bulk).BulkLoad(...) pattern in build and
// recovery paths.
func LoadSorted(idx Index, keys, values []uint64) error {
	if s := Seams(idx); s.Bulk != nil {
		return s.Bulk.BulkLoad(keys, values)
	}
	for i, k := range keys {
		var v uint64
		if values != nil {
			v = values[i]
		}
		if err := idx.Insert(k, v); err != nil {
			return err
		}
	}
	return nil
}
