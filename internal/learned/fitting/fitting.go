// Package fitting implements the FITing-tree: error-bounded linear
// segments as leaves (built, per the paper's §III-A1 methodology, with
// the improved optimal PLA rather than the original greedy algorithm)
// under a B+tree inner structure that maps segment start keys to leaves.
//
// Both of the paper's insertion strategies are provided:
//
//   - Inplace: each leaf reserves free slots; inserts shift existing keys
//     to open a gap at the insertion point (cheap space, expensive moves).
//   - Buffer: each leaf carries a sorted side buffer; when the buffer
//     fills, it is merged with the leaf and the node is retrained
//     ("retrain one node", possibly splitting into several segments).
package fitting

import (
	"time"

	"learnedpieces/internal/btree"
	"learnedpieces/internal/index"
	"learnedpieces/internal/pla"
	"learnedpieces/internal/search"
)

// Mode selects the insertion strategy.
type Mode int

const (
	// Inplace reserves free slots inside each leaf (FITing-tree-inp).
	Inplace Mode = iota
	// Buffer gives each leaf a sorted side buffer (FITing-tree-buf).
	Buffer
)

// Algorithm selects the segmentation algorithm.
type Algorithm int

const (
	// OptPLA is the improved optimal PLA the paper substitutes for the
	// original greedy algorithm (§III-A1).
	OptPLA Algorithm = iota
	// GreedyFSW is FITing-tree's original feasible-space-window greedy.
	GreedyFSW
)

// Config controls segmentation and reserved space.
type Config struct {
	Mode Mode
	// Algorithm picks the segmentation algorithm (default OptPLA, per the
	// paper's methodology).
	Algorithm Algorithm
	// Eps is the maximum segment error; <= 0 picks 32.
	Eps int
	// Reserve is the reserved slot count per leaf (Inplace) or the buffer
	// capacity (Buffer); <= 0 picks 256. Fig 18 sweeps this value.
	Reserve int
}

// DefaultConfig returns the buffer variant with the paper's defaults.
func DefaultConfig() Config { return Config{Mode: Buffer, Eps: 32, Reserve: 256} }

func (c *Config) normalize() {
	if c.Eps <= 0 {
		c.Eps = 32
	}
	if c.Reserve <= 0 {
		c.Reserve = 256
	}
}

type segLeaf struct {
	firstKey  uint64
	slope     float64
	intercept float64 // predicts local position in keys
	maxErr    int     // widened by one per in-place insert/delete
	keys      []uint64
	vals      []uint64
	// Buffer mode: sorted side buffer.
	bufK []uint64
	bufV []uint64
}

func (l *segLeaf) predict(key uint64) int {
	var d float64
	if key >= l.firstKey {
		d = float64(key - l.firstKey)
	} else {
		d = -float64(l.firstKey - key)
	}
	p := int(l.slope*d + l.intercept)
	if p < 0 {
		return 0
	}
	if p >= len(l.keys) {
		return len(l.keys) - 1
	}
	return p
}

// search finds key in the leaf's base array with an error-bounded
// search around the model prediction; on a miss it returns the
// insertion point inside the window.
func (l *segLeaf) search(key uint64) (int, bool) {
	if len(l.keys) == 0 {
		return 0, false
	}
	p := l.predict(key)
	return search.FindBounded(l.keys, key, p-l.maxErr, p+l.maxErr+1)
}

// Index is the FITing-tree.
type Index struct {
	cfg    Config
	inner  *btree.BTree // segment firstKey -> index into leaves
	leaves []*segLeaf
	length int

	retrains  int64
	retrainNs int64
}

// New returns an empty FITing-tree.
func New(cfg Config) *Index {
	cfg.normalize()
	return &Index{cfg: cfg, inner: btree.New()}
}

// Name implements index.Index.
func (ix *Index) Name() string {
	if ix.cfg.Mode == Inplace {
		return "fiting-inp"
	}
	return "fiting-buf"
}

// Len returns the number of stored entries.
func (ix *Index) Len() int { return ix.length }

// ConcurrentReads reports that concurrent Gets are safe between writes.
func (ix *Index) ConcurrentReads() bool { return true }

// RetrainStats implements index.RetrainReporter.
func (ix *Index) RetrainStats() (int64, int64) { return ix.retrains, ix.retrainNs }

// BulkLoad segments sorted keys with Opt-PLA and builds the inner B+tree.
func (ix *Index) BulkLoad(keys, values []uint64) error {
	ix.inner = btree.New()
	ix.leaves = ix.leaves[:0]
	ix.length = len(keys)
	if len(keys) == 0 {
		return nil
	}
	segs := ix.segment(keys)
	firsts := make([]uint64, len(segs))
	ids := make([]uint64, len(segs))
	for i, s := range segs {
		l := ix.newLeaf(keys[s.Start:s.End], valSlice(values, s.Start, s.End), s)
		ix.leaves = append(ix.leaves, l)
		firsts[i] = s.FirstKey
		ids[i] = uint64(i)
	}
	return ix.inner.BulkLoad(firsts, ids)
}

// segment runs the configured segmentation algorithm.
func (ix *Index) segment(keys []uint64) []pla.Segment {
	if ix.cfg.Algorithm == GreedyFSW {
		return pla.BuildGreedy(keys, ix.cfg.Eps)
	}
	return pla.BuildOptPLA(keys, ix.cfg.Eps)
}

func valSlice(values []uint64, start, end int) []uint64 {
	if values == nil {
		return nil
	}
	return values[start:end]
}

// newLeaf copies the key/value run into a leaf with reserved capacity and
// a local version of the segment's model.
func (ix *Index) newLeaf(keys, values []uint64, s pla.Segment) *segLeaf {
	capHint := len(keys)
	if ix.cfg.Mode == Inplace {
		capHint += ix.cfg.Reserve
	}
	l := &segLeaf{
		firstKey:  s.FirstKey,
		slope:     s.Slope,
		intercept: s.Intercept - float64(s.Start),
		keys:      make([]uint64, len(keys), capHint),
		vals:      make([]uint64, len(keys), capHint),
	}
	copy(l.keys, keys)
	if values != nil {
		copy(l.vals, values)
	}
	// Re-measure the error bound against the leaf-local model: shifting
	// the intercept changes float64 rounding, so the segment's global
	// MaxErr is not a valid bound for the re-anchored predictions.
	for i, k := range l.keys {
		e := l.predict(k) - i
		if e < 0 {
			e = -e
		}
		if e > l.maxErr {
			l.maxErr = e
		}
	}
	return l
}

// leafFor locates the leaf whose key range contains key (the leftmost
// leaf when key precedes every segment). It returns nil only when the
// index is empty.
func (ix *Index) leafFor(key uint64) *segLeaf {
	if len(ix.leaves) == 0 {
		return nil
	}
	_, id, ok := ix.inner.Floor(key)
	if !ok {
		// Key precedes the first segment.
		ix.inner.Scan(0, 1, func(k, v uint64) bool { id = v; return true })
	}
	return ix.leaves[id]
}

// Get returns the value stored under key.
func (ix *Index) Get(key uint64) (uint64, bool) {
	l := ix.leafFor(key)
	if l == nil {
		return 0, false
	}
	if i, ok := l.search(key); ok {
		return l.vals[i], true
	}
	if ix.cfg.Mode == Buffer {
		if i, ok := bufSearch(l.bufK, key); ok {
			return l.bufV[i], true
		}
	}
	return 0, false
}

func bufSearch(buf []uint64, key uint64) (int, bool) {
	return search.Find(buf, key)
}

// Insert stores value under key, replacing any existing value.
func (ix *Index) Insert(key, value uint64) error {
	l := ix.leafFor(key)
	if l == nil {
		seg := pla.Segment{FirstKey: key, Start: 0, End: 1}
		nl := ix.newLeaf([]uint64{key}, []uint64{value}, seg)
		ix.leaves = append(ix.leaves, nl)
		if err := ix.inner.Insert(key, uint64(len(ix.leaves)-1)); err != nil {
			return err
		}
		ix.length = 1
		return nil
	}
	if i, ok := l.search(key); ok {
		l.vals[i] = value
		return nil
	}
	if ix.cfg.Mode == Buffer {
		i, ok := bufSearch(l.bufK, key)
		if ok {
			l.bufV[i] = value
			return nil
		}
		l.bufK = append(l.bufK, 0)
		l.bufV = append(l.bufV, 0)
		copy(l.bufK[i+1:], l.bufK[i:])
		copy(l.bufV[i+1:], l.bufV[i:])
		l.bufK[i] = key
		l.bufV[i] = value
		ix.length++
		if len(l.bufK) >= ix.cfg.Reserve {
			ix.retrainLeaf(l)
		}
		return nil
	}
	// Inplace: shift to open a gap at the insertion point.
	if len(l.keys) == cap(l.keys) {
		ix.retrainLeafWith(l, key, value)
		ix.length++
		return nil
	}
	i, _ := l.search(key)
	// search returns a window-local position for misses; recover the exact
	// rank with a bounded scan.
	for i > 0 && l.keys[i-1] > key {
		i--
	}
	for i < len(l.keys) && l.keys[i] < key {
		i++
	}
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = value
	l.maxErr++ // positions shifted by at most one more slot
	ix.length++
	return nil
}

// retrainLeaf merges a leaf with its buffer and re-segments it.
func (ix *Index) retrainLeaf(l *segLeaf) {
	keys := make([]uint64, 0, len(l.keys)+len(l.bufK))
	vals := make([]uint64, 0, len(l.keys)+len(l.bufK))
	i, j := 0, 0
	for i < len(l.keys) || j < len(l.bufK) {
		if j >= len(l.bufK) || (i < len(l.keys) && l.keys[i] < l.bufK[j]) {
			keys = append(keys, l.keys[i])
			vals = append(vals, l.vals[i])
			i++
		} else {
			keys = append(keys, l.bufK[j])
			vals = append(vals, l.bufV[j])
			j++
		}
	}
	ix.replaceLeaf(l, keys, vals)
}

// retrainLeafWith re-segments a full inplace leaf together with one new
// key.
func (ix *Index) retrainLeafWith(l *segLeaf, key, value uint64) {
	keys := make([]uint64, 0, len(l.keys)+1)
	vals := make([]uint64, 0, len(l.keys)+1)
	pos := search.LowerBound(l.keys, key, 0, len(l.keys))
	keys = append(keys, l.keys[:pos]...)
	vals = append(vals, l.vals[:pos]...)
	keys = append(keys, key)
	vals = append(vals, value)
	keys = append(keys, l.keys[pos:]...)
	vals = append(vals, l.vals[pos:]...)
	ix.replaceLeaf(l, keys, vals)
}

// replaceLeaf re-runs Opt-PLA over the merged keys and swaps the
// resulting segment leaves into the inner tree ("retrain one node").
func (ix *Index) replaceLeaf(old *segLeaf, keys, vals []uint64) {
	start := time.Now()
	ix.inner.Delete(old.firstKey)
	segs := ix.segment(keys)
	for _, s := range segs {
		nl := ix.newLeaf(keys[s.Start:s.End], vals[s.Start:s.End], s)
		ix.leaves = append(ix.leaves, nl)
		// The inner btree's Insert error is interface-shaped and always nil.
		_ = ix.inner.Insert(s.FirstKey, uint64(len(ix.leaves)-1))
	}
	ix.retrains++
	ix.retrainNs += time.Since(start).Nanoseconds()
}

// Delete removes key and reports whether it was present.
func (ix *Index) Delete(key uint64) bool {
	l := ix.leafFor(key)
	if l == nil {
		return false
	}
	if i, ok := l.search(key); ok {
		copy(l.keys[i:], l.keys[i+1:])
		copy(l.vals[i:], l.vals[i+1:])
		l.keys = l.keys[:len(l.keys)-1]
		l.vals = l.vals[:len(l.vals)-1]
		l.maxErr++
		ix.length--
		return true
	}
	if ix.cfg.Mode == Buffer {
		if i, ok := bufSearch(l.bufK, key); ok {
			l.bufK = append(l.bufK[:i], l.bufK[i+1:]...)
			l.bufV = append(l.bufV[:i], l.bufV[i+1:]...)
			ix.length--
			return true
		}
	}
	return false
}

// Scan visits entries with key >= start in ascending order, merging each
// leaf's base array with its buffer.
func (ix *Index) Scan(start uint64, n int, fn func(key, value uint64) bool) {
	count := 0
	stop := false
	emit := func(k, v uint64) bool {
		if k < start {
			return true
		}
		if n > 0 && count >= n {
			stop = true
			return false
		}
		if !fn(k, v) {
			stop = true
			return false
		}
		count++
		return true
	}
	from := uint64(0)
	if _, _, ok := ix.inner.Floor(start); ok {
		k, _, _ := ix.inner.Floor(start)
		from = k
	}
	ix.inner.Scan(from, 0, func(_, id uint64) bool {
		l := ix.leaves[id]
		i, j := 0, 0
		for i < len(l.keys) || j < len(l.bufK) {
			var k, v uint64
			if j >= len(l.bufK) || (i < len(l.keys) && l.keys[i] < l.bufK[j]) {
				k, v = l.keys[i], l.vals[i]
				i++
			} else {
				k, v = l.bufK[j], l.bufV[j]
				j++
			}
			if !emit(k, v) {
				return false
			}
		}
		return !stop
	})
}

// AvgDepth reports the inner B+tree depth (Table II).
func (ix *Index) AvgDepth() float64 { return ix.inner.AvgDepth() }

// LeafCount returns the live segment count.
func (ix *Index) LeafCount() int { return ix.inner.Len() }

// Sizes reports the footprint: inner tree and models are structure.
func (ix *Index) Sizes() index.Sizes {
	inner := ix.inner.Sizes()
	var keyBytes, valBytes, modelBytes int64
	ix.inner.Scan(0, 0, func(_, id uint64) bool {
		l := ix.leaves[id]
		modelBytes += 48
		keyBytes += int64(cap(l.keys)+len(l.bufK)) * 8
		valBytes += int64(cap(l.vals)+len(l.bufV)) * 8
		return true
	})
	return index.Sizes{
		Structure: inner.Structure + inner.Keys + inner.Values + modelBytes,
		Keys:      keyBytes,
		Values:    valBytes,
	}
}
